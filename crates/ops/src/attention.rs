//! Scaled-dot-product attention, unfused vs. FlashAttention-style fused.
//!
//! Section 5.4 names cache strategies "like FlashAttention" as the
//! flagship Operator Fusion remedy for MTE-bound operators: the naive
//! pipeline materializes the `seq × seq` score matrix in GM twice (once
//! after `QKᵀ`, once after the softmax), while the fused kernel keeps
//! score tiles on chip and only ever writes the output.

use crate::{ceil_div, Operator, OptFlags};
use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{BufferAllocator, IsaError, Kernel, KernelBuilder, Region};

/// Single-head attention `O = softmax(Q Kᵀ / √d) V` over FP16 tensors.
///
/// Meaningful flags: `fused` (FlashAttention-style on-chip score tiles)
/// and `pp` (double-buffered staging inside the fused kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attention {
    seq: u64,
    dim: u64,
    flags: OptFlags,
}

impl Attention {
    const ELEM_BYTES: u64 = 2;
    /// Query rows processed per block.
    const BQ: u64 = 64;
    /// Key/value rows processed per chunk.
    const BK: u64 = 256;

    /// Attention over a `seq × dim` query/key/value set.
    #[must_use]
    pub fn new(seq: u64, dim: u64) -> Self {
        Attention { seq: seq.max(Self::BQ), dim: dim.max(16), flags: OptFlags::new() }
    }

    /// Applies optimization flags (`fused`, `pp`).
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }

    /// The (seq, dim) shape.
    #[must_use]
    pub fn shape(&self) -> (u64, u64) {
        (self.seq, self.dim)
    }

    #[allow(clippy::too_many_lines)]
    fn build_fused(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let e = Self::ELEM_BYTES;
        let q_tile = Self::BQ * self.dim * e;
        let kv_tile = Self::BK * self.dim * e;
        let s_tile = Self::BQ * Self::BK * e;
        let mut alloc = BufferAllocator::new(chip);
        let gm_q = alloc.alloc(Buffer::Gm, self.seq * self.dim * e)?;
        let gm_k = alloc.alloc(Buffer::Gm, self.seq * self.dim * e)?;
        let gm_v = alloc.alloc(Buffer::Gm, self.seq * self.dim * e)?;
        let gm_o = alloc.alloc(Buffer::Gm, self.seq * self.dim * e)?;
        let l1_q = alloc.alloc(Buffer::L1, q_tile)?;
        let l1_kv: Vec<Region> = if self.flags.has_pp() {
            alloc.alloc_ping_pong(Buffer::L1, 2 * kv_tile)?.to_vec()
        } else {
            vec![alloc.alloc(Buffer::L1, 2 * kv_tile)?]
        };
        let l0a = alloc.alloc(Buffer::L0A, q_tile.max(s_tile))?;
        let l0b = alloc.alloc(Buffer::L0B, kv_tile)?;
        let l0c = alloc.alloc(Buffer::L0C, s_tile)?;
        let ub_s = alloc.alloc(Buffer::Ub, s_tile)?;
        let ub_o = alloc.alloc(Buffer::Ub, q_tile)?;

        let mut b = KernelBuilder::new(self.name());
        let q_blocks = ceil_div(self.seq, Self::BQ);
        let k_chunks = ceil_div(self.seq, Self::BK);
        for qi in 0..q_blocks {
            let bq = Self::BQ.min(self.seq - qi * Self::BQ);
            b.transfer(TransferPath::GmToL1, gm_q.slice(qi * q_tile, q_tile), l1_q)?;
            b.sync(Component::MteGm, Component::MteL1);
            for ki in 0..k_chunks {
                let bk = Self::BK.min(self.seq - ki * Self::BK);
                let kv = l1_kv[(ki as usize) % l1_kv.len()];
                // K and V chunks stream through L1; scores stay on chip.
                b.transfer(
                    TransferPath::GmToL1,
                    gm_k.slice(ki * kv_tile, kv_tile),
                    kv.slice(0, kv_tile),
                )?;
                b.transfer(
                    TransferPath::GmToL1,
                    gm_v.slice(ki * kv_tile, kv_tile),
                    kv.slice(kv_tile, kv_tile),
                )?;
                b.sync(Component::MteGm, Component::MteL1);
                b.transfer(TransferPath::L1ToL0A, l1_q, l0a.slice(0, q_tile))?;
                b.transfer(TransferPath::L1ToL0B, kv.slice(0, kv_tile), l0b)?;
                b.sync(Component::MteL1, Component::Cube);
                // S = Q K^T on this tile.
                b.compute(
                    ComputeUnit::Cube,
                    Precision::Fp16,
                    2 * bq * bk * self.dim,
                    vec![l0a.slice(0, q_tile), l0b],
                    vec![l0c.slice(0, s_tile)],
                );
                b.sync(Component::Cube, Component::Vector);
                // Online softmax on the score tile (never leaves UB).
                b.compute(
                    ComputeUnit::Vector,
                    Precision::Fp16,
                    6 * bq * bk,
                    vec![l0c.slice(0, s_tile)],
                    vec![ub_s.slice(0, s_tile)],
                );
                b.sync(Component::Vector, Component::Cube);
                // O += P V for this chunk.
                b.compute(
                    ComputeUnit::Cube,
                    Precision::Fp16,
                    2 * bq * bk * self.dim,
                    vec![ub_s.slice(0, s_tile), l0b],
                    vec![l0c.slice(0, q_tile.min(s_tile))],
                );
            }
            b.sync(Component::Cube, Component::Vector);
            b.compute(
                ComputeUnit::Vector,
                Precision::Fp16,
                bq * self.dim,
                vec![l0c.slice(0, q_tile.min(s_tile))],
                vec![ub_o.slice(0, q_tile)],
            );
            b.sync(Component::Vector, Component::MteUb);
            b.transfer(
                TransferPath::UbToGm,
                ub_o.slice(0, q_tile),
                gm_o.slice(qi * q_tile, q_tile),
            )?;
        }
        Ok(b.build())
    }

    fn build_unfused(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let e = Self::ELEM_BYTES;
        let q_tile = Self::BQ * self.dim * e;
        let kv_tile = Self::BK * self.dim * e;
        let s_tile = Self::BQ * Self::BK * e;
        let mut alloc = BufferAllocator::new(chip);
        let gm_q = alloc.alloc(Buffer::Gm, self.seq * self.dim * e)?;
        let gm_k = alloc.alloc(Buffer::Gm, self.seq * self.dim * e)?;
        let gm_v = alloc.alloc(Buffer::Gm, self.seq * self.dim * e)?;
        // The materialized score/probability matrices: seq x seq in GM.
        let gm_s = alloc.alloc(Buffer::Gm, self.seq * self.seq * e)?;
        let gm_p = alloc.alloc(Buffer::Gm, self.seq * self.seq * e)?;
        let gm_o = alloc.alloc(Buffer::Gm, self.seq * self.dim * e)?;
        let l1_q = alloc.alloc(Buffer::L1, q_tile)?;
        let l1_p = alloc.alloc(Buffer::L1, s_tile)?;
        let l1_kv = alloc.alloc(Buffer::L1, kv_tile)?;
        let l0a = alloc.alloc(Buffer::L0A, q_tile.max(s_tile).min(64 << 10))?;
        let l0b = alloc.alloc(Buffer::L0B, kv_tile)?;
        let l0c = alloc.alloc(Buffer::L0C, s_tile)?;
        let ub = alloc.alloc(Buffer::Ub, s_tile)?;
        let ub_o = alloc.alloc(Buffer::Ub, q_tile)?;

        let mut b = KernelBuilder::new(self.name());
        let q_blocks = ceil_div(self.seq, Self::BQ);
        let k_chunks = ceil_div(self.seq, Self::BK);

        // Phase 1: S = Q K^T, materialized to GM tile by tile.
        for qi in 0..q_blocks {
            let bq = Self::BQ.min(self.seq - qi * Self::BQ);
            b.transfer(TransferPath::GmToL1, gm_q.slice(qi * q_tile, q_tile), l1_q)?;
            b.sync(Component::MteGm, Component::MteL1);
            for ki in 0..k_chunks {
                let bk = Self::BK.min(self.seq - ki * Self::BK);
                b.transfer(TransferPath::GmToL1, gm_k.slice(ki * kv_tile, kv_tile), l1_kv)?;
                b.sync(Component::MteGm, Component::MteL1);
                b.transfer(TransferPath::L1ToL0A, l1_q, l0a.slice(0, q_tile))?;
                b.transfer(TransferPath::L1ToL0B, l1_kv, l0b)?;
                b.sync(Component::MteL1, Component::Cube);
                b.compute(
                    ComputeUnit::Cube,
                    Precision::Fp16,
                    2 * bq * bk * self.dim,
                    vec![l0a.slice(0, q_tile), l0b],
                    vec![l0c.slice(0, s_tile)],
                );
                b.sync(Component::Cube, Component::Vector);
                b.compute(
                    ComputeUnit::Vector,
                    Precision::Fp16,
                    bq * bk,
                    vec![l0c.slice(0, s_tile)],
                    vec![ub.slice(0, s_tile)],
                );
                b.sync(Component::Vector, Component::MteUb);
                let s_off = (qi * k_chunks + ki) * s_tile;
                b.transfer(TransferPath::UbToGm, ub.slice(0, s_tile), gm_s.slice(s_off, s_tile))?;
            }
        }
        // Phase 2: P = softmax(S), a full GM round trip over seq^2.
        let soft_tile = 16 * 1024 * e;
        let ub_soft = alloc.alloc(Buffer::Ub, soft_tile)?;
        let total = self.seq * self.seq * e;
        for t in crate::tiles(total, soft_tile) {
            let src = gm_s.slice(t.offset, t.len);
            let dst = gm_p.slice(t.offset, t.len);
            let staged = ub_soft.slice(0, t.len);
            b.transfer(TransferPath::GmToUb, src, staged)?;
            b.sync(Component::MteGm, Component::Vector);
            b.compute(
                ComputeUnit::Vector,
                Precision::Fp16,
                6 * t.len / e,
                vec![staged],
                vec![staged],
            );
            b.sync(Component::Vector, Component::MteUb);
            b.transfer(TransferPath::UbToGm, staged, dst)?;
        }
        // Phase 3: O = P V, reading P back from GM.
        for qi in 0..q_blocks {
            let bq = Self::BQ.min(self.seq - qi * Self::BQ);
            for ki in 0..k_chunks {
                let bk = Self::BK.min(self.seq - ki * Self::BK);
                let p_off = (qi * k_chunks + ki) * s_tile;
                b.transfer(TransferPath::GmToL1, gm_p.slice(p_off, s_tile), l1_p)?;
                b.transfer(TransferPath::GmToL1, gm_v.slice(ki * kv_tile, kv_tile), l1_kv)?;
                b.sync(Component::MteGm, Component::MteL1);
                b.transfer(TransferPath::L1ToL0A, l1_p, l0a.slice(0, s_tile.min(l0a.len())))?;
                b.transfer(TransferPath::L1ToL0B, l1_kv, l0b)?;
                b.sync(Component::MteL1, Component::Cube);
                b.compute(
                    ComputeUnit::Cube,
                    Precision::Fp16,
                    2 * bq * bk * self.dim,
                    vec![l0a.slice(0, s_tile.min(l0a.len())), l0b],
                    vec![l0c.slice(0, q_tile.min(s_tile))],
                );
            }
            b.sync(Component::Cube, Component::Vector);
            b.compute(
                ComputeUnit::Vector,
                Precision::Fp16,
                bq * self.dim,
                vec![l0c.slice(0, q_tile.min(s_tile))],
                vec![ub_o.slice(0, q_tile)],
            );
            b.sync(Component::Vector, Component::MteUb);
            b.transfer(
                TransferPath::UbToGm,
                ub_o.slice(0, q_tile),
                gm_o.slice(qi * q_tile, q_tile),
            )?;
        }
        Ok(b.build())
    }
}

impl Operator for Attention {
    fn name(&self) -> String {
        if self.flags.has_fused() {
            format!("flash_attention_{}x{}{}", self.seq, self.dim, self.flags.suffix())
        } else {
            format!("attention_{}x{}{}", self.seq, self.dim, self.flags.suffix())
        }
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        if self.flags.has_fused() {
            self.build_fused(chip)
        } else {
            self.build_unfused(chip)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_isa::KernelStats;
    use ascend_sim::Simulator;

    const SEQ: u64 = 1024;
    const DIM: u64 = 64;

    #[test]
    fn both_variants_build_and_validate() {
        let chip = ChipSpec::training();
        for flags in [OptFlags::new(), OptFlags::new().fused(true)] {
            let kernel = Attention::new(SEQ, DIM).with_flags(flags).build(&chip).unwrap();
            ascend_isa::validate(&kernel, &chip).unwrap();
        }
    }

    #[test]
    fn fusion_eliminates_the_score_round_trips() {
        let chip = ChipSpec::training();
        let unfused = Attention::new(SEQ, DIM).build(&chip).unwrap();
        let fused =
            Attention::new(SEQ, DIM).with_flags(OptFlags::new().fused(true)).build(&chip).unwrap();
        let b0 = KernelStats::of(&unfused);
        let b1 = KernelStats::of(&fused);
        // The materialized S and P matrices dominate unfused GM traffic.
        assert!(
            b1.bytes_of_component(Component::MteUb) * 3 < b0.bytes_of_component(Component::MteUb),
            "fused write-out must shrink drastically: {} vs {}",
            b1.bytes_of_component(Component::MteUb),
            b0.bytes_of_component(Component::MteUb)
        );
        // Cube work is identical: fusion changes traffic, not math.
        assert_eq!(
            b0.ops_of(ComputeUnit::Cube, Precision::Fp16),
            b1.ops_of(ComputeUnit::Cube, Precision::Fp16)
        );
    }

    #[test]
    fn fusion_is_substantially_faster() {
        let chip = ChipSpec::training();
        let sim = Simulator::new(chip.clone());
        let t0 =
            sim.simulate(&Attention::new(SEQ, DIM).build(&chip).unwrap()).unwrap().total_cycles();
        let t1 = sim
            .simulate(
                &Attention::new(SEQ, DIM)
                    .with_flags(OptFlags::new().fused(true))
                    .build(&chip)
                    .unwrap(),
            )
            .unwrap()
            .total_cycles();
        let speedup = t0 / t1;
        assert!(speedup > 1.3, "FlashAttention-style fusion must pay off, got {speedup:.2}");
    }

    #[test]
    fn fusion_gain_grows_with_sequence_length() {
        let chip = ChipSpec::training();
        let sim = Simulator::new(chip.clone());
        let speedup_at = |seq: u64| {
            let t0 = sim
                .simulate(&Attention::new(seq, DIM).build(&chip).unwrap())
                .unwrap()
                .total_cycles();
            let t1 = sim
                .simulate(
                    &Attention::new(seq, DIM)
                        .with_flags(OptFlags::new().fused(true))
                        .build(&chip)
                        .unwrap(),
                )
                .unwrap()
                .total_cycles();
            t0 / t1
        };
        let short = speedup_at(512);
        let long = speedup_at(2048);
        assert!(
            long > short,
            "the seq^2 score matrix should hurt more at longer sequences: {short:.2} vs {long:.2}"
        );
    }
}
