//! The Conv2D operator: im2col-style convolution on the Cube.

use crate::{tiles, Operator, OptFlags};
use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{BufferAllocator, IsaError, Kernel, KernelBuilder};

/// A 2-D convolution lowered to tiled matrix multiplies.
///
/// Per output tile: the im2col patch loads `GM → L1 → L0A`, the weights
/// load `GM → L1 → L0B`, the Cube multiplies, a Vector post-op (bias +
/// activation) drains L0C into UB, and MTE-UB stores the tile.
///
/// Baseline pathologies (Table 1 row Conv2D: `MRT` + `RSD`, 2.65×):
///
/// - the weights are re-transferred from GM every tile (`mrt` hoists);
/// - the Vector post-op writes its result back into the same UB region
///   the next tile's drain will use while the store still reads it
///   (`rsd` double-buffers the UB output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2d {
    output_elements: u64,
    /// Channels × kernel-height × kernel-width contraction length.
    contraction: u64,
    tile_out: u64,
    flags: OptFlags,
}

impl Conv2d {
    const ELEM_BYTES: u64 = 2;

    /// A convolution producing `output_elements` FP16 outputs with a
    /// contraction (C·kh·kw) of `contraction`.
    #[must_use]
    pub fn new(output_elements: u64, contraction: u64) -> Self {
        Conv2d {
            output_elements,
            contraction: contraction.max(1),
            tile_out: 4096,
            flags: OptFlags::new(),
        }
    }

    /// Overrides outputs per tile.
    #[must_use]
    pub fn with_tile(mut self, tile_out: u64) -> Self {
        self.tile_out = tile_out.max(1);
        self
    }

    /// Applies optimization flags (`mrt`, `rsd`, `pp`).
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }
}

impl Operator for Conv2d {
    fn name(&self) -> String {
        format!("conv2d{}", self.flags.suffix())
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        // im2col inflates the input: each output element reads a patch.
        // Cap the staged patch block to the L0A capacity.
        let patch_bytes = (self.tile_out * Self::ELEM_BYTES * 4).min(48 * 1024);
        // A realistic output-channel block: contraction x 128 channels.
        let weight_bytes = (self.contraction * Self::ELEM_BYTES * 128).min(32 * 1024);
        let out_tile_bytes = self.tile_out * Self::ELEM_BYTES;
        let tile_list: Vec<crate::Tile> = tiles(self.output_elements, self.tile_out).collect();

        let mut alloc = BufferAllocator::new(chip);
        let gm_in = alloc.alloc(Buffer::Gm, patch_bytes * tile_list.len() as u64)?;
        let gm_w = alloc.alloc(Buffer::Gm, weight_bytes)?;
        let gm_out = alloc.alloc(Buffer::Gm, self.output_elements * Self::ELEM_BYTES)?;
        let l1_in = if self.flags.has_pp() {
            alloc.alloc_ping_pong(Buffer::L1, patch_bytes)?.to_vec()
        } else {
            vec![alloc.alloc(Buffer::L1, patch_bytes)?]
        };
        let l1_w = alloc.alloc(Buffer::L1, weight_bytes)?;
        let l0a = if self.flags.has_pp() {
            alloc.alloc_ping_pong(Buffer::L0A, patch_bytes)?.to_vec()
        } else {
            vec![alloc.alloc(Buffer::L0A, patch_bytes)?]
        };
        let l0b = alloc.alloc(Buffer::L0B, weight_bytes)?;
        let l0c = if self.flags.has_pp() {
            alloc.alloc_ping_pong(Buffer::L0C, out_tile_bytes)?.to_vec()
        } else {
            vec![alloc.alloc(Buffer::L0C, out_tile_bytes)?]
        };
        let ub_out = if self.flags.has_rsd() {
            alloc.alloc_ping_pong(Buffer::Ub, out_tile_bytes)?.to_vec()
        } else {
            vec![alloc.alloc(Buffer::Ub, out_tile_bytes)?]
        };

        let mut b = KernelBuilder::new(self.name());
        for (i, tile) in tile_list.iter().enumerate() {
            let out_len = tile.len * Self::ELEM_BYTES;
            let l1_r = l1_in[i % l1_in.len()];
            let l0a_r = l0a[i % l0a.len()];
            let l0c_r = l0c[i % l0c.len()];
            b.transfer(
                TransferPath::GmToL1,
                gm_in.slice(i as u64 * patch_bytes, patch_bytes),
                l1_r,
            )?;
            if !self.flags.has_mrt() || i == 0 {
                b.transfer(TransferPath::GmToL1, gm_w, l1_w)?;
            }
            b.sync(Component::MteGm, Component::MteL1);
            b.transfer(TransferPath::L1ToL0A, l1_r, l0a_r)?;
            // Weights stay resident in L0B once MRT hoists their reload.
            if !self.flags.has_mrt() || i == 0 {
                b.transfer(TransferPath::L1ToL0B, l1_w, l0b)?;
            }
            b.sync(Component::MteL1, Component::Cube);
            b.compute(
                ComputeUnit::Cube,
                Precision::Fp16,
                2 * tile.len * self.contraction,
                vec![l0a_r, l0b],
                vec![l0c_r.slice(0, out_len)],
            );
            b.sync(Component::Cube, Component::Vector);
            let dst = ub_out[i % ub_out.len()].slice(0, out_len);
            // Bias + activation drain.
            b.compute(
                ComputeUnit::Vector,
                Precision::Fp16,
                2 * tile.len,
                vec![l0c_r.slice(0, out_len)],
                vec![dst],
            );
            b.sync(Component::Vector, Component::MteUb);
            b.transfer(
                TransferPath::UbToGm,
                dst,
                gm_out.slice(tile.offset * Self::ELEM_BYTES, out_len),
            )?;
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_isa::KernelStats;
    use ascend_sim::Simulator;

    const OUT: u64 = 1 << 18;

    #[test]
    fn builds_and_validates() {
        let chip = ChipSpec::training();
        let kernel = Conv2d::new(OUT, 288).build(&chip).unwrap();
        ascend_isa::validate(&kernel, &chip).unwrap();
    }

    #[test]
    fn rsd_and_mrt_give_a_big_speedup() {
        let chip = ChipSpec::training();
        let sim = Simulator::new(chip.clone());
        let base = Conv2d::new(OUT, 288).build(&chip).unwrap();
        let tuned = Conv2d::new(OUT, 288)
            .with_flags(OptFlags::new().rsd(true).mrt(true).pp(true))
            .build(&chip)
            .unwrap();
        let t0 = sim.simulate(&base).unwrap().total_cycles();
        let t1 = sim.simulate(&tuned).unwrap().total_cycles();
        let speedup = t0 / t1;
        assert!(
            speedup > 1.5,
            "Conv2D's paper speedup is 2.65x; expected a large gain, got {speedup:.2}"
        );
    }

    #[test]
    fn mrt_removes_weight_reloads() {
        let chip = ChipSpec::training();
        let base = Conv2d::new(OUT, 288).build(&chip).unwrap();
        let mrt = Conv2d::new(OUT, 288).with_flags(OptFlags::new().mrt(true)).build(&chip).unwrap();
        let b0 = KernelStats::of(&base).bytes_of_component(Component::MteGm);
        let b1 = KernelStats::of(&mrt).bytes_of_component(Component::MteGm);
        assert!(b1 < b0);
    }

    #[test]
    fn cube_ops_scale_with_contraction() {
        let chip = ChipSpec::training();
        let small = Conv2d::new(OUT, 144).build(&chip).unwrap();
        let large = Conv2d::new(OUT, 288).build(&chip).unwrap();
        let s = KernelStats::of(&small).ops_of(ComputeUnit::Cube, Precision::Fp16);
        let l = KernelStats::of(&large).ops_of(ComputeUnit::Cube, Precision::Fp16);
        assert_eq!(l, 2 * s);
    }
}
