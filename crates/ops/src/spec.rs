//! Serializable operator descriptions for cross-process work shipping.
//!
//! [`Operator`] is an open trait of kernel generators; a sandboxed
//! executor cannot ship a `Box<dyn Operator>` to a worker process. An
//! [`OpSpec`] is the closed, serde-serializable subset: a value that
//! names one concrete operator of this crate plus everything its
//! constructor consumes (shape, tile overrides, [`OptFlags`]).
//! [`OpSpec::instantiate`] rebuilds the operator on the far side, and
//! because the concrete types are deterministic shape+flags values, the
//! instantiated operator is **semantically identical** to one built
//! locally from the same spec — same descriptor, same fingerprint, same
//! generated kernel.
//!
//! # Examples
//!
//! ```
//! use ascend_ops::{AddRelu, OpSpec, Operator};
//!
//! let spec = OpSpec::add_relu(1 << 14);
//! let remote = spec.instantiate();
//! let local = AddRelu::new(1 << 14);
//! assert_eq!(remote.fingerprint(), local.fingerprint());
//! ```

use crate::{
    AddRelu, AvgPool, Elementwise, EltwiseKind, Gelu, LayerNorm, MatMul, Operator, OptFlags,
    Softmax,
};
use serde::{Deserialize, Serialize};

/// A closed, serializable description of one operator instance —
/// everything a worker process needs to rebuild it with
/// [`instantiate`](OpSpec::instantiate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpSpec {
    /// [`AddRelu`] over `elements` FP16 values.
    AddRelu {
        /// Total element count.
        elements: u64,
        /// Tile-size override (`None` keeps the constructor default).
        tile: Option<u64>,
        /// Optimization flags.
        flags: OptFlags,
    },
    /// [`Gelu`] over `elements` values.
    Gelu {
        /// Total element count.
        elements: u64,
        /// Optimization flags.
        flags: OptFlags,
    },
    /// [`Softmax`] over `elements` values.
    Softmax {
        /// Total element count.
        elements: u64,
        /// Optimization flags.
        flags: OptFlags,
    },
    /// [`LayerNorm`] over `elements` values.
    LayerNorm {
        /// Total element count.
        elements: u64,
        /// Optimization flags.
        flags: OptFlags,
    },
    /// [`Elementwise`] of `kind` over `elements` values.
    Elementwise {
        /// The pointwise operation.
        kind: EltwiseKind,
        /// Total element count.
        elements: u64,
        /// Tile-size override (`None` keeps the constructor default).
        tile: Option<u64>,
        /// Optimization flags.
        flags: OptFlags,
    },
    /// [`MatMul`] of an `m × k` by `k × n` product.
    MatMul {
        /// Rows of the left operand.
        m: u64,
        /// Shared dimension.
        k: u64,
        /// Columns of the right operand.
        n: u64,
        /// Optimization flags.
        flags: OptFlags,
    },
    /// [`AvgPool`] producing `output_elements` values.
    AvgPool {
        /// Number of pooled output elements.
        output_elements: u64,
        /// Window-size override (`None` keeps the constructor default).
        window: Option<u64>,
        /// Tile-size override (`None` keeps the constructor default).
        tile: Option<u64>,
        /// Optimization flags.
        flags: OptFlags,
    },
}

impl OpSpec {
    /// An [`AddRelu`] spec with default tile and no flags.
    #[must_use]
    pub fn add_relu(elements: u64) -> Self {
        OpSpec::AddRelu { elements, tile: None, flags: OptFlags::new() }
    }

    /// A [`Gelu`] spec with no flags.
    #[must_use]
    pub fn gelu(elements: u64) -> Self {
        OpSpec::Gelu { elements, flags: OptFlags::new() }
    }

    /// A [`Softmax`] spec with no flags.
    #[must_use]
    pub fn softmax(elements: u64) -> Self {
        OpSpec::Softmax { elements, flags: OptFlags::new() }
    }

    /// A [`LayerNorm`] spec with no flags.
    #[must_use]
    pub fn layer_norm(elements: u64) -> Self {
        OpSpec::LayerNorm { elements, flags: OptFlags::new() }
    }

    /// An [`Elementwise`] spec with default tile and no flags.
    #[must_use]
    pub fn elementwise(kind: EltwiseKind, elements: u64) -> Self {
        OpSpec::Elementwise { kind, elements, tile: None, flags: OptFlags::new() }
    }

    /// A [`MatMul`] spec with no flags.
    #[must_use]
    pub fn matmul(m: u64, k: u64, n: u64) -> Self {
        OpSpec::MatMul { m, k, n, flags: OptFlags::new() }
    }

    /// An [`AvgPool`] spec with default window/tile and no flags.
    #[must_use]
    pub fn avg_pool(output_elements: u64) -> Self {
        OpSpec::AvgPool { output_elements, window: None, tile: None, flags: OptFlags::new() }
    }

    /// Replaces the optimization flags, whichever variant this is.
    #[must_use]
    pub fn with_flags(mut self, new: OptFlags) -> Self {
        match &mut self {
            OpSpec::AddRelu { flags, .. }
            | OpSpec::Gelu { flags, .. }
            | OpSpec::Softmax { flags, .. }
            | OpSpec::LayerNorm { flags, .. }
            | OpSpec::Elementwise { flags, .. }
            | OpSpec::MatMul { flags, .. }
            | OpSpec::AvgPool { flags, .. } => *flags = new,
        }
        self
    }

    /// Rebuilds the described operator instance.
    #[must_use]
    pub fn instantiate(&self) -> Box<dyn Operator> {
        match *self {
            OpSpec::AddRelu { elements, tile, flags } => {
                let mut op = AddRelu::new(elements).with_flags(flags);
                if let Some(tile) = tile {
                    op = op.with_tile(tile);
                }
                Box::new(op)
            }
            OpSpec::Gelu { elements, flags } => Box::new(Gelu::new(elements).with_flags(flags)),
            OpSpec::Softmax { elements, flags } => {
                Box::new(Softmax::new(elements).with_flags(flags))
            }
            OpSpec::LayerNorm { elements, flags } => {
                Box::new(LayerNorm::new(elements).with_flags(flags))
            }
            OpSpec::Elementwise { kind, elements, tile, flags } => {
                let mut op = Elementwise::new(kind, elements).with_flags(flags);
                if let Some(tile) = tile {
                    op = op.with_tile(tile);
                }
                Box::new(op)
            }
            OpSpec::MatMul { m, k, n, flags } => Box::new(MatMul::new(m, k, n).with_flags(flags)),
            OpSpec::AvgPool { output_elements, window, tile, flags } => {
                let mut op = AvgPool::new(output_elements).with_flags(flags);
                if let Some(window) = window {
                    op = op.with_window(window);
                }
                if let Some(tile) = tile {
                    op = op.with_tile(tile);
                }
                Box::new(op)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiation_matches_direct_construction() {
        let cases: Vec<(OpSpec, Box<dyn Operator>)> = vec![
            (OpSpec::add_relu(1 << 14), Box::new(AddRelu::new(1 << 14))),
            (OpSpec::gelu(1 << 12), Box::new(Gelu::new(1 << 12))),
            (OpSpec::softmax(1 << 10), Box::new(Softmax::new(1 << 10))),
            (OpSpec::layer_norm(1 << 11), Box::new(LayerNorm::new(1 << 11))),
            (
                OpSpec::elementwise(EltwiseKind::Mul, 1 << 13),
                Box::new(Elementwise::new(EltwiseKind::Mul, 1 << 13)),
            ),
            (OpSpec::matmul(64, 64, 64), Box::new(MatMul::new(64, 64, 64))),
            (OpSpec::avg_pool(1 << 10), Box::new(AvgPool::new(1 << 10))),
        ];
        for (spec, direct) in cases {
            let rebuilt = spec.instantiate();
            assert_eq!(rebuilt.descriptor(), direct.descriptor(), "{spec:?}");
            assert_eq!(rebuilt.fingerprint(), direct.fingerprint(), "{spec:?}");
        }
    }

    #[test]
    fn flags_and_overrides_survive_the_round_trip() {
        let flags = OptFlags::new().rsd(true).mrt(true);
        let spec = OpSpec::AddRelu { elements: 1 << 16, tile: Some(4096), flags };
        let direct = AddRelu::new(1 << 16).with_tile(4096).with_flags(flags);
        assert_eq!(spec.instantiate().fingerprint(), direct.fingerprint());
        assert_eq!(spec.with_flags(OptFlags::new()).instantiate().flags(), OptFlags::new());
    }

    #[test]
    fn specs_serialize_round_trip() {
        let specs = [
            OpSpec::add_relu(1 << 14),
            OpSpec::matmul(32, 64, 128).with_flags(OptFlags::new().pp(true)),
            OpSpec::elementwise(EltwiseKind::Add, 100),
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: OpSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back, "{json}");
        }
    }
}
