//! The AvgPool operator (paper, Section 5.3).

use crate::{tiles, Operator, OptFlags};
use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{BufferAllocator, IsaError, Kernel, KernelBuilder};

/// `Y[i,j] = mean(X[i:i+k, j:j+k])` over FP16 feature maps.
///
/// The baseline implementation sets the Vector unit's `repeat` parameter
/// to 1, so every pooling window contribution is a separate tiny vector
/// instruction — 98 loops per tile, exactly the pathology of the paper's
/// case study. Each tiny instruction pays the full issue overhead, making
/// the Vector unit busy (high time ratio) yet inefficient (*inefficient
/// compute*). *Adjusting Instruction Parameter* (`aip`) raises `repeat`
/// so one instruction covers the whole accumulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvgPool {
    output_elements: u64,
    window: u64,
    tile_out: u64,
    flags: OptFlags,
}

impl AvgPool {
    const ELEM_BYTES: u64 = 2;

    /// An AvgPool producing `output_elements` FP16 outputs with a 7×7
    /// window (49 taps, two vector micro-ops per tap).
    #[must_use]
    pub fn new(output_elements: u64) -> Self {
        AvgPool { output_elements, window: 49, tile_out: 512, flags: OptFlags::new() }
    }

    /// Overrides the pooling window size (in taps, e.g. 49 for 7×7).
    #[must_use]
    pub fn with_window(mut self, window: u64) -> Self {
        self.window = window.max(1);
        self
    }

    /// Overrides the number of outputs per tile.
    #[must_use]
    pub fn with_tile(mut self, tile_out: u64) -> Self {
        self.tile_out = tile_out.max(1);
        self
    }

    /// Applies optimization flags (`aip` is meaningful here).
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }

    /// Vector operations needed per tile (two micro-ops per tap, plus the
    /// final 1/k² scale).
    fn ops_per_tile(&self, out_len: u64) -> u64 {
        out_len * self.window * 2
    }
}

impl Operator for AvgPool {
    fn name(&self) -> String {
        format!("avgpool{}", self.flags.suffix())
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        // Stride-1 pooling: overlapping windows mean the input footprint is
        // only about twice the output, even though every output reads 49
        // taps (the compute-to-traffic ratio that starves the paper's
        // Vector unit).
        let in_tile_bytes = self.tile_out * 2 * Self::ELEM_BYTES;
        let out_tile_bytes = self.tile_out * Self::ELEM_BYTES;
        let mut alloc = BufferAllocator::new(chip);
        let gm_in = alloc.alloc(Buffer::Gm, self.output_elements * 2 * Self::ELEM_BYTES)?;
        let gm_out = alloc.alloc(Buffer::Gm, self.output_elements * Self::ELEM_BYTES)?;
        // The case-study operator already pipelines well (its Vector time
        // ratio is 83.98% in the paper), so input staging is ping-ponged.
        let ub_in = alloc.alloc_ping_pong(Buffer::Ub, in_tile_bytes)?;
        let ub_acc = alloc.alloc(Buffer::Ub, out_tile_bytes)?;
        let ub_out = alloc.alloc(Buffer::Ub, out_tile_bytes)?;

        let mut b = KernelBuilder::new(self.name());
        for tile in tiles(self.output_elements, self.tile_out) {
            let in_off = tile.offset * 2 * Self::ELEM_BYTES;
            let in_len = tile.len * 2 * Self::ELEM_BYTES;
            let out_off = tile.offset * Self::ELEM_BYTES;
            let out_len = tile.len * Self::ELEM_BYTES;
            let src = ub_in[(tile.index % 2) as usize].slice(0, in_len);
            let acc = ub_acc.slice(0, out_len);
            let dst = ub_out.slice(0, out_len);

            b.transfer(TransferPath::GmToUb, gm_in.slice(in_off, in_len), src)?;
            b.sync(Component::MteGm, Component::Vector);
            let total_ops = self.ops_per_tile(tile.len);
            if self.flags.has_aip() {
                // repeat = window: one instruction covers the whole
                // accumulation.
                b.compute(ComputeUnit::Vector, Precision::Fp16, total_ops, vec![src], vec![acc]);
            } else {
                // repeat = 1: one tiny instruction per window tap, each
                // paying the full issue overhead (the paper's 98 loops).
                let per_loop = crate::ceil_div(total_ops, self.window);
                let mut remaining = total_ops;
                while remaining > 0 {
                    let ops = per_loop.min(remaining);
                    b.compute(ComputeUnit::Vector, Precision::Fp16, ops, vec![src], vec![acc]);
                    remaining -= ops;
                }
            }
            // Final 1/k^2 scale.
            b.compute(ComputeUnit::Vector, Precision::Fp16, tile.len, vec![acc], vec![dst]);
            b.sync(Component::Vector, Component::MteUb);
            b.transfer(TransferPath::UbToGm, dst, gm_out.slice(out_off, out_len))?;
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_profile::Profiler;
    use ascend_roofline::{analyze, Bottleneck, Thresholds};
    use ascend_sim::Simulator;

    const OUT: u64 = 1 << 16;

    #[test]
    fn builds_and_validates() {
        let chip = ChipSpec::inference();
        let kernel = AvgPool::new(OUT).build(&chip).unwrap();
        ascend_isa::validate(&kernel, &chip).unwrap();
    }

    #[test]
    fn baseline_is_inefficient_compute_on_vector() {
        let chip = ChipSpec::inference();
        let kernel = AvgPool::new(OUT).build(&chip).unwrap();
        let (profile, _) = Profiler::new(chip.clone()).run(&kernel).unwrap();
        let analysis = analyze(&profile, &chip, &Thresholds::default());
        assert_eq!(
            analysis.bottleneck(),
            Bottleneck::InefficientCompute(ComputeUnit::Vector),
            "\n{}",
            analysis.summary()
        );
        let v = analysis.metrics_of(Component::Vector).unwrap();
        assert!(v.time_ratio > 0.7, "Vector should be busy, R={}", v.time_ratio);
        assert!(v.utilization < 0.35, "but inefficient, U={}", v.utilization);
    }

    #[test]
    fn aip_gives_a_large_speedup() {
        let chip = ChipSpec::inference();
        let sim = Simulator::new(chip.clone());
        let base = AvgPool::new(OUT).build(&chip).unwrap();
        let aip = AvgPool::new(OUT).with_flags(OptFlags::new().aip(true)).build(&chip).unwrap();
        let t0 = sim.simulate(&base).unwrap().total_cycles();
        let t1 = sim.simulate(&aip).unwrap().total_cycles();
        let speedup = t0 / t1;
        assert!(
            (2.0..7.0).contains(&speedup),
            "AIP speedup should be near the paper's 4.31x, got {speedup:.2}"
        );
    }

    #[test]
    fn aip_improves_vector_utilization() {
        let chip = ChipSpec::inference();
        let profiler = Profiler::new(chip.clone());
        let base = AvgPool::new(OUT).build(&chip).unwrap();
        let aip = AvgPool::new(OUT).with_flags(OptFlags::new().aip(true)).build(&chip).unwrap();
        let (p0, _) = profiler.run(&base).unwrap();
        let (p1, _) = profiler.run(&aip).unwrap();
        let u0 = analyze(&p0, &chip, &Thresholds::default())
            .metrics_of(Component::Vector)
            .unwrap()
            .utilization;
        let u1 = analyze(&p1, &chip, &Thresholds::default())
            .metrics_of(Component::Vector)
            .unwrap()
            .utilization;
        assert!(u1 > 2.0 * u0, "utilization must rise sharply: {u0} -> {u1}");
    }

    #[test]
    fn vector_ops_are_identical_across_variants() {
        let chip = ChipSpec::inference();
        let base = AvgPool::new(OUT).build(&chip).unwrap();
        let aip = AvgPool::new(OUT).with_flags(OptFlags::new().aip(true)).build(&chip).unwrap();
        let s0 = ascend_isa::KernelStats::of(&base);
        let s1 = ascend_isa::KernelStats::of(&aip);
        assert_eq!(
            s0.ops_of(ComputeUnit::Vector, Precision::Fp16),
            s1.ops_of(ComputeUnit::Vector, Precision::Fp16),
            "AIP changes instruction shape, not the math"
        );
        assert!(
            s0.instructions_per_queue[&Component::Vector]
                > 10 * s1.instructions_per_queue[&Component::Vector]
        );
    }
}
