//! Embedding gather and row-wise reduction — the recommendation-model
//! memory patterns (DeepFM / Wide&Deep / DLRM in Table 2).

use crate::{tiles, Operator, OptFlags};
use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{BufferAllocator, IsaError, Kernel, KernelBuilder};

/// Embedding-table gather: `lookups` random rows of `dim` FP16 values.
///
/// The baseline issues one tiny `GM → UB` transfer per looked-up row —
/// the canonical *inefficient MTE* pattern. `itg` batches
/// [`Embedding::BATCH`] rows per transfer (vectorized gather), the same
/// remedy the paper's Increasing Transfer Granularity applies to small
/// stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Embedding {
    rows: u64,
    dim: u64,
    lookups: u64,
    flags: OptFlags,
}

impl Embedding {
    const ELEM_BYTES: u64 = 2;
    /// Rows fetched per transfer under ITG.
    pub const BATCH: u64 = 32;

    /// A gather of `lookups` rows from a `rows × dim` FP16 table.
    #[must_use]
    pub fn new(rows: u64, dim: u64, lookups: u64) -> Self {
        Embedding {
            rows: rows.max(1),
            dim: dim.max(8),
            lookups: lookups.max(1),
            flags: OptFlags::new(),
        }
    }

    /// Applies optimization flags (`itg`).
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }
}

impl Operator for Embedding {
    fn name(&self) -> String {
        format!("embedding_{}x{}x{}{}", self.rows, self.dim, self.lookups, self.flags.suffix())
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let row_bytes = self.dim * Self::ELEM_BYTES;
        let batch = if self.flags.has_itg() { Self::BATCH } else { 1 };
        let fetch_bytes = row_bytes * batch;
        let mut alloc = BufferAllocator::new(chip);
        let gm_table = alloc.alloc(Buffer::Gm, self.rows * row_bytes)?;
        let gm_out = alloc.alloc(Buffer::Gm, self.lookups * row_bytes)?;
        let ub = alloc.alloc_ping_pong(Buffer::Ub, fetch_bytes.max(row_bytes))?;

        let mut b = KernelBuilder::new(self.name());
        let fetches = self.lookups.div_ceil(batch);
        for f in 0..fetches {
            let got = batch.min(self.lookups - f * batch);
            let len = got * row_bytes;
            // Deterministic pseudo-random row (stride walk over the table).
            let row = (f * 2_654_435_761) % self.rows.saturating_sub(batch).max(1);
            let staged = ub[(f % 2) as usize].slice(0, len);
            b.transfer(TransferPath::GmToUb, gm_table.slice(row * row_bytes, len), staged)?;
            b.sync(Component::MteGm, Component::MteUb);
            b.transfer(TransferPath::UbToGm, staged, gm_out.slice(f * batch * row_bytes, len))?;
        }
        Ok(b.build())
    }
}

/// Row-wise reduction `y[r] = Σ x[r, :]` over FP16 data: streams the
/// input once and writes a tiny output — a Vector-side streaming pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceSum {
    elements: u64,
    reduction: u64,
    tile_elements: u64,
    flags: OptFlags,
}

impl ReduceSum {
    const ELEM_BYTES: u64 = 2;

    /// A reduction producing `elements / reduction` sums over windows of
    /// `reduction` values.
    #[must_use]
    pub fn new(elements: u64, reduction: u64) -> Self {
        ReduceSum {
            elements,
            reduction: reduction.max(2),
            tile_elements: 16 * 1024,
            flags: OptFlags::new(),
        }
    }

    /// Applies optimization flags (`pp`).
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }
}

impl Operator for ReduceSum {
    fn name(&self) -> String {
        format!("reduce_sum{}", self.flags.suffix())
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let tile_bytes = self.tile_elements * Self::ELEM_BYTES;
        let out_total = (self.elements / self.reduction).max(1) * Self::ELEM_BYTES;
        let mut alloc = BufferAllocator::new(chip);
        let gm_in = alloc.alloc(Buffer::Gm, self.elements * Self::ELEM_BYTES)?;
        let gm_out = alloc.alloc(Buffer::Gm, out_total)?;
        let ub_in = if self.flags.has_pp() {
            alloc.alloc_ping_pong(Buffer::Ub, tile_bytes)?.to_vec()
        } else {
            vec![alloc.alloc(Buffer::Ub, tile_bytes)?]
        };
        let ub_acc = alloc.alloc(Buffer::Ub, 4096)?;

        let mut b = KernelBuilder::new(self.name());
        for tile in tiles(self.elements, self.tile_elements) {
            let off = tile.offset * Self::ELEM_BYTES;
            let len = tile.len * Self::ELEM_BYTES;
            let src = ub_in[(tile.index as usize) % ub_in.len()].slice(0, len);
            b.transfer(TransferPath::GmToUb, gm_in.slice(off, len), src)?;
            b.sync(Component::MteGm, Component::Vector);
            b.compute(ComputeUnit::Vector, Precision::Fp16, tile.len, vec![src], vec![ub_acc]);
        }
        // One small final write-out.
        b.sync(Component::Vector, Component::MteUb);
        let out_len = out_total.min(4096);
        b.transfer(TransferPath::UbToGm, ub_acc.slice(0, out_len), gm_out.slice(0, out_len))?;
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_isa::KernelStats;
    use ascend_profile::Profiler;
    use ascend_roofline::{analyze, Bottleneck, Thresholds};
    use ascend_sim::Simulator;

    #[test]
    fn embedding_builds_and_validates() {
        let chip = ChipSpec::training();
        for flags in [OptFlags::new(), OptFlags::new().itg(true)] {
            let kernel = Embedding::new(1 << 16, 64, 4096).with_flags(flags).build(&chip).unwrap();
            ascend_isa::validate(&kernel, &chip).unwrap();
        }
    }

    #[test]
    fn baseline_gather_is_inefficient_mte() {
        let chip = ChipSpec::training();
        let kernel = Embedding::new(1 << 16, 64, 4096).build(&chip).unwrap();
        let (profile, _) = Profiler::new(chip.clone()).run(&kernel).unwrap();
        let analysis = analyze(&profile, &chip, &Thresholds::default());
        assert!(
            matches!(analysis.bottleneck(), Bottleneck::InefficientMte(_)),
            "\n{}",
            analysis.summary()
        );
    }

    #[test]
    fn itg_batches_lookups_and_pays_off_hugely() {
        let chip = ChipSpec::training();
        let base = Embedding::new(1 << 16, 64, 4096).build(&chip).unwrap();
        let itg = Embedding::new(1 << 16, 64, 4096)
            .with_flags(OptFlags::new().itg(true))
            .build(&chip)
            .unwrap();
        let s0 = KernelStats::of(&base);
        let s1 = KernelStats::of(&itg);
        assert_eq!(
            s0.bytes_of_component(ascend_arch::Component::MteGm),
            s1.bytes_of_component(ascend_arch::Component::MteGm),
            "same bytes, different granularity"
        );
        let sim = Simulator::new(chip);
        let t0 = sim.simulate(&base).unwrap().total_cycles();
        let t1 = sim.simulate(&itg).unwrap().total_cycles();
        assert!(t0 / t1 > 4.0, "row-at-a-time gather is brutal: got {:.2}x", t0 / t1);
    }

    #[test]
    fn reduce_sum_reads_everything_writes_almost_nothing() {
        let chip = ChipSpec::training();
        let kernel = ReduceSum::new(1 << 19, 1 << 10).build(&chip).unwrap();
        ascend_isa::validate(&kernel, &chip).unwrap();
        let stats = KernelStats::of(&kernel);
        assert!(
            stats.bytes_of_component(ascend_arch::Component::MteGm)
                > 100 * stats.bytes_of_component(ascend_arch::Component::MteUb)
        );
    }

    #[test]
    fn reduce_sum_pp_overlaps_loads() {
        let chip = ChipSpec::training();
        let sim = Simulator::new(chip.clone());
        let base = ReduceSum::new(1 << 19, 1 << 10).build(&chip).unwrap();
        let pp = ReduceSum::new(1 << 19, 1 << 10)
            .with_flags(OptFlags::new().pp(true))
            .build(&chip)
            .unwrap();
        let t0 = sim.simulate(&base).unwrap().total_cycles();
        let t1 = sim.simulate(&pp).unwrap().total_cycles();
        assert!(t1 <= t0, "double-buffered input must not hurt: {t1} > {t0}");
    }
}
