//! The Add_ReLU fused operator (paper, Section 5.1 / Figures 8–10).

use crate::{tiles, Operator, OptFlags};
use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{BufferAllocator, IsaError, Kernel, KernelBuilder};

/// `Add_ReLU(x) = ReLU(x + c)` over an FP16 tensor, as it appears in
/// MobileNetV3's Hard-Swish activation.
///
/// Per tile the baseline kernel (Figure 8):
///
/// 1. transfers the constant `c` **and** the input tile from GM to UB
///    (MTE-GM) — the constant transfer repeats every iteration, the
///    redundancy *Minimizing Redundant Transfer* removes;
/// 2. adds, then applies ReLU on the Vector unit, **in place** in the
///    input region — the write-back of one tile therefore collides with
///    the next tile's load (Figure 9), the spatial dependency *Reducing
///    Spatial Dependency* removes;
/// 3. stores the result back to GM (MTE-UB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddRelu {
    elements: u64,
    tile_elements: u64,
    flags: OptFlags,
}

impl AddRelu {
    const ELEM_BYTES: u64 = 2; // FP16
    const CONST_BYTES: u64 = 32;

    /// An Add_ReLU over `elements` FP16 values with the default tile size.
    #[must_use]
    pub fn new(elements: u64) -> Self {
        AddRelu { elements, tile_elements: 16 * 1024, flags: OptFlags::new() }
    }

    /// Overrides the tile size (elements per UB tile).
    #[must_use]
    pub fn with_tile(mut self, tile_elements: u64) -> Self {
        self.tile_elements = tile_elements.max(1);
        self
    }

    /// Applies optimization flags (`rsd` and `mrt` are meaningful here).
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }

    /// Total number of elements.
    #[must_use]
    pub fn elements(&self) -> u64 {
        self.elements
    }
}

impl Operator for AddRelu {
    fn name(&self) -> String {
        format!("add_relu{}", self.flags.suffix())
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let mut alloc = BufferAllocator::new(chip);
        let tile_bytes = self.tile_elements * Self::ELEM_BYTES;
        let gm_x = alloc.alloc(Buffer::Gm, self.elements * Self::ELEM_BYTES)?;
        let gm_y = alloc.alloc(Buffer::Gm, self.elements * Self::ELEM_BYTES)?;
        let gm_c = alloc.alloc(Buffer::Gm, Self::CONST_BYTES)?;
        let ub_c = alloc.alloc(Buffer::Ub, Self::CONST_BYTES)?;
        let ub_in = alloc.alloc(Buffer::Ub, tile_bytes)?;
        // RSD: dedicated (double-buffered) result regions so the write-back
        // no longer collides with the next tile's load.
        let ub_res = if self.flags.has_rsd() {
            Some(alloc.alloc_ping_pong(Buffer::Ub, tile_bytes)?)
        } else {
            None
        };

        let mut b = KernelBuilder::new(self.name());
        for tile in tiles(self.elements, self.tile_elements) {
            let byte_off = tile.offset * Self::ELEM_BYTES;
            let byte_len = tile.len * Self::ELEM_BYTES;
            let x = gm_x.slice(byte_off, byte_len);
            let y = gm_y.slice(byte_off, byte_len);
            let dst_in = ub_in.slice(0, byte_len);
            let dst_out = match &ub_res {
                Some(pair) => pair[(tile.index % 2) as usize].slice(0, byte_len),
                None => dst_in,
            };

            // (1) Redundant constant transfer inside the loop unless MRT.
            if !self.flags.has_mrt() || tile.index == 0 {
                b.transfer(TransferPath::GmToUb, gm_c, ub_c)?;
            }
            // (2) Load the input tile.
            b.transfer(TransferPath::GmToUb, x, dst_in)?;
            b.sync(Component::MteGm, Component::Vector);
            // (3) Add, then ReLU, on the Vector unit.
            b.compute(
                ComputeUnit::Vector,
                Precision::Fp16,
                tile.len,
                vec![dst_in, ub_c],
                vec![dst_out],
            );
            b.compute(ComputeUnit::Vector, Precision::Fp16, tile.len, vec![dst_out], vec![dst_out]);
            b.sync(Component::Vector, Component::MteUb);
            // (4) Write the tile back.
            b.transfer(TransferPath::UbToGm, dst_out, y)?;
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_profile::Profiler;
    use ascend_roofline::{analyze, Bottleneck, Thresholds};
    use ascend_sim::Simulator;

    const N: u64 = 1 << 20;

    fn time(flags: OptFlags) -> f64 {
        let chip = ChipSpec::training();
        let kernel = AddRelu::new(N).with_flags(flags).build(&chip).unwrap();
        Simulator::new(chip).simulate(&kernel).unwrap().total_cycles()
    }

    #[test]
    fn kernel_builds_and_validates() {
        let chip = ChipSpec::training();
        let kernel = AddRelu::new(N).build(&chip).unwrap();
        ascend_isa::validate(&kernel, &chip).unwrap();
        assert!(!kernel.is_empty());
        assert_eq!(kernel.name(), "add_relu");
    }

    #[test]
    fn rsd_then_mrt_each_help() {
        let base = time(OptFlags::new());
        let rsd = time(OptFlags::new().rsd(true));
        let both = time(OptFlags::new().rsd(true).mrt(true));
        assert!(rsd < base, "RSD must help: {rsd} !< {base}");
        assert!(both < rsd, "MRT must further help: {both} !< {rsd}");
        let speedup = base / both;
        assert!(
            (1.3..2.6).contains(&speedup),
            "overall speedup should be around the paper's 1.72x, got {speedup:.2}"
        );
    }

    #[test]
    fn baseline_is_insufficient_parallelism() {
        let chip = ChipSpec::training();
        let kernel = AddRelu::new(N).build(&chip).unwrap();
        let (profile, _) = Profiler::new(chip.clone()).run(&kernel).unwrap();
        let analysis = analyze(&profile, &chip, &Thresholds::default());
        assert_eq!(
            analysis.bottleneck(),
            Bottleneck::InsufficientParallelism,
            "\n{}",
            analysis.summary()
        );
    }

    #[test]
    fn optimized_becomes_mte_ub_bound() {
        let chip = ChipSpec::training();
        let kernel =
            AddRelu::new(N).with_flags(OptFlags::new().rsd(true).mrt(true)).build(&chip).unwrap();
        let (profile, _) = Profiler::new(chip.clone()).run(&kernel).unwrap();
        let analysis = analyze(&profile, &chip, &Thresholds::default());
        assert_eq!(
            analysis.bottleneck(),
            Bottleneck::MteBound(Component::MteUb),
            "\n{}",
            analysis.summary()
        );
        let m = analysis.metrics_of(Component::MteUb).unwrap();
        assert!(m.time_ratio > 0.75, "MTE-UB should be busy, R={}", m.time_ratio);
    }

    #[test]
    fn odd_sizes_produce_short_last_tile() {
        let chip = ChipSpec::training();
        let kernel = AddRelu::new(100_001).with_tile(4096).build(&chip).unwrap();
        ascend_isa::validate(&kernel, &chip).unwrap();
        let stats = ascend_isa::KernelStats::of(&kernel);
        assert_eq!(
            stats.ops_of(ComputeUnit::Vector, Precision::Fp16),
            2 * 100_001,
            "add + relu each touch every element"
        );
    }

    #[test]
    fn mrt_reduces_mte_gm_bytes() {
        let chip = ChipSpec::training();
        let base = AddRelu::new(N).build(&chip).unwrap();
        let mrt = AddRelu::new(N).with_flags(OptFlags::new().mrt(true)).build(&chip).unwrap();
        let b0 = ascend_isa::KernelStats::of(&base).bytes_of_component(Component::MteGm);
        let b1 = ascend_isa::KernelStats::of(&mrt).bytes_of_component(Component::MteGm);
        assert!(b1 < b0);
    }
}
