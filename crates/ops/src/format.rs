//! Format-conversion operators: TransData and Cast.
//!
//! The Cube unit requires its private tiling format (fractal NZ); tensors
//! arriving in plain formats are converted by TransData, and dtype changes
//! by Cast. The PanGu-α study finds these conversions expensive and
//! minimizes them by fixing the input format (Section 6.2.1).

use crate::{tiles, Operator, OptFlags};
use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{BufferAllocator, IsaError, Kernel, KernelBuilder};

/// Layout conversion into/out of the Cube's private format.
///
/// The baseline computes the scatter indices on the **Scalar** unit —
/// slow, serial address arithmetic. The `ct` flag applies *Computation
/// Transformation*: the index math is vectorized as gathers on the Vector
/// unit, relieving the Scalar bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransData {
    elements: u64,
    tile_elements: u64,
    flags: OptFlags,
}

impl TransData {
    const ELEM_BYTES: u64 = 2;
    /// Scalar index operations per element in the baseline.
    const SCALAR_OPS_PER_ELT_X16: u64 = 1; // 1/16 op per element

    /// A layout conversion over `elements` FP16 values.
    #[must_use]
    pub fn new(elements: u64) -> Self {
        TransData { elements, tile_elements: 8 * 1024, flags: OptFlags::new() }
    }

    /// Applies optimization flags (`ct` vectorizes the index math).
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }
}

impl Operator for TransData {
    fn name(&self) -> String {
        format!("transdata{}", self.flags.suffix())
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let tile_bytes = self.tile_elements * Self::ELEM_BYTES;
        let mut alloc = BufferAllocator::new(chip);
        let gm_in = alloc.alloc(Buffer::Gm, self.elements * Self::ELEM_BYTES)?;
        let gm_out = alloc.alloc(Buffer::Gm, self.elements * Self::ELEM_BYTES)?;
        let ub_in = alloc.alloc_ping_pong(Buffer::Ub, tile_bytes)?;
        let ub_out = alloc.alloc_ping_pong(Buffer::Ub, tile_bytes)?;
        let ub_idx = alloc.alloc(Buffer::Ub, 1024)?;

        let mut b = KernelBuilder::new(self.name());
        for tile in tiles(self.elements, self.tile_elements) {
            let off = tile.offset * Self::ELEM_BYTES;
            let len = tile.len * Self::ELEM_BYTES;
            let parity = (tile.index % 2) as usize;
            let src = ub_in[parity].slice(0, len);
            let dst = ub_out[parity].slice(0, len);
            b.transfer(TransferPath::GmToUb, gm_in.slice(off, len), src)?;
            let index_ops = (tile.len * Self::SCALAR_OPS_PER_ELT_X16).div_ceil(16);
            if self.flags.has_ct() {
                // Vectorized index computation.
                b.compute(ComputeUnit::Vector, Precision::Int32, index_ops, vec![], vec![ub_idx]);
            } else {
                // Serial scalar address arithmetic.
                b.compute(ComputeUnit::Scalar, Precision::Int32, index_ops, vec![], vec![ub_idx]);
                b.sync(Component::Scalar, Component::Vector);
            }
            b.sync(Component::MteGm, Component::Vector);
            // The permuting copy itself.
            b.compute(ComputeUnit::Vector, Precision::Fp16, tile.len, vec![src, ub_idx], vec![dst]);
            b.sync(Component::Vector, Component::MteUb);
            b.transfer(TransferPath::UbToGm, dst, gm_out.slice(off, len))?;
        }
        Ok(b.build())
    }
}

/// Dtype conversion (e.g. FP32 → FP16) as a vector copy with widening
/// loads: the input moves twice the output bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cast {
    elements: u64,
    tile_elements: u64,
    flags: OptFlags,
}

impl Cast {
    const IN_BYTES: u64 = 4; // FP32 source
    const OUT_BYTES: u64 = 2; // FP16 destination

    /// A cast of `elements` FP32 values down to FP16.
    #[must_use]
    pub fn new(elements: u64) -> Self {
        Cast { elements, tile_elements: 8 * 1024, flags: OptFlags::new() }
    }

    /// Applies optimization flags (`rsd`, `pp`).
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }
}

impl Operator for Cast {
    fn name(&self) -> String {
        format!("cast{}", self.flags.suffix())
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let in_tile = self.tile_elements * Self::IN_BYTES;
        let out_tile = self.tile_elements * Self::OUT_BYTES;
        let mut alloc = BufferAllocator::new(chip);
        let gm_in = alloc.alloc(Buffer::Gm, self.elements * Self::IN_BYTES)?;
        let gm_out = alloc.alloc(Buffer::Gm, self.elements * Self::OUT_BYTES)?;
        let ub_in = if self.flags.has_pp() {
            alloc.alloc_ping_pong(Buffer::Ub, in_tile)?.to_vec()
        } else {
            vec![alloc.alloc(Buffer::Ub, in_tile)?]
        };
        let ub_out = if self.flags.has_rsd() {
            alloc.alloc_ping_pong(Buffer::Ub, out_tile)?.to_vec()
        } else {
            vec![alloc.alloc(Buffer::Ub, out_tile)?]
        };

        let mut b = KernelBuilder::new(self.name());
        for tile in tiles(self.elements, self.tile_elements) {
            let src_gm = gm_in.slice(tile.offset * Self::IN_BYTES, tile.len * Self::IN_BYTES);
            let dst_gm = gm_out.slice(tile.offset * Self::OUT_BYTES, tile.len * Self::OUT_BYTES);
            let src =
                ub_in[(tile.index as usize) % ub_in.len()].slice(0, tile.len * Self::IN_BYTES);
            let dst =
                ub_out[(tile.index as usize) % ub_out.len()].slice(0, tile.len * Self::OUT_BYTES);
            b.transfer(TransferPath::GmToUb, src_gm, src)?;
            b.sync(Component::MteGm, Component::Vector);
            b.compute(ComputeUnit::Vector, Precision::Fp32, tile.len, vec![src], vec![dst]);
            b.sync(Component::Vector, Component::MteUb);
            b.transfer(TransferPath::UbToGm, dst, dst_gm)?;
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_isa::KernelStats;
    use ascend_sim::Simulator;

    const N: u64 = 1 << 19;

    #[test]
    fn both_build_and_validate() {
        let chip = ChipSpec::training();
        for kernel in [TransData::new(N).build(&chip).unwrap(), Cast::new(N).build(&chip).unwrap()]
        {
            ascend_isa::validate(&kernel, &chip).unwrap();
        }
    }

    #[test]
    fn ct_moves_work_off_the_scalar_unit() {
        let chip = ChipSpec::training();
        let base = TransData::new(N).build(&chip).unwrap();
        let ct = TransData::new(N).with_flags(OptFlags::new().ct(true)).build(&chip).unwrap();
        let s0 = KernelStats::of(&base);
        let s1 = KernelStats::of(&ct);
        assert!(s0.total_ops(ComputeUnit::Scalar) > 0);
        assert_eq!(s1.total_ops(ComputeUnit::Scalar), 0);
        let sim = Simulator::new(chip);
        let t0 = sim.simulate(&base).unwrap().total_cycles();
        let t1 = sim.simulate(&ct).unwrap().total_cycles();
        assert!(t1 < t0, "CT must help transdata: {t1} !< {t0}");
    }

    #[test]
    fn cast_reads_twice_what_it_writes() {
        let chip = ChipSpec::training();
        let kernel = Cast::new(N).build(&chip).unwrap();
        let stats = KernelStats::of(&kernel);
        assert_eq!(
            stats.bytes_of_component(Component::MteGm),
            2 * stats.bytes_of_component(Component::MteUb)
        );
    }
}
