//! The GeLU activation and its Enhanced-Algorithm variant FastGeLU.

use crate::{tiles, Operator, OptFlags};
use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{BufferAllocator, IsaError, Kernel, KernelBuilder};

/// GeLU over an FP16 tensor.
///
/// The baseline evaluates the tanh-series formula (14 vector micro-ops per
/// element), which makes the operator *compute bound* on the Vector unit.
/// The `ea` flag switches to FastGeLU (4 micro-ops per element) — the
/// paper's Enhanced Algorithm row of Table 1 (1.06×) and the
/// GeLU→FastGeLU substitution of the PanGu-α study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gelu {
    elements: u64,
    tile_elements: u64,
    flags: OptFlags,
}

impl Gelu {
    const ELEM_BYTES: u64 = 2;
    /// Vector micro-ops per element of the exact tanh-series GeLU.
    pub const OPS_EXACT: u64 = 14;
    /// Vector micro-ops per element of FastGeLU.
    pub const OPS_FAST: u64 = 4;

    /// A GeLU over `elements` FP16 values.
    #[must_use]
    pub fn new(elements: u64) -> Self {
        Gelu { elements, tile_elements: 16 * 1024, flags: OptFlags::new() }
    }

    /// Applies optimization flags (`ea` selects FastGeLU).
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }

    fn ops_per_element(&self) -> u64 {
        if self.flags.has_ea() {
            Self::OPS_FAST
        } else {
            Self::OPS_EXACT
        }
    }
}

impl Operator for Gelu {
    fn name(&self) -> String {
        if self.flags.has_ea() {
            format!("fast_gelu{}", self.flags.suffix())
        } else {
            format!("gelu{}", self.flags.suffix())
        }
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let tile_bytes = self.tile_elements * Self::ELEM_BYTES;
        let mut alloc = BufferAllocator::new(chip);
        let gm_in = alloc.alloc(Buffer::Gm, self.elements * Self::ELEM_BYTES)?;
        let gm_out = alloc.alloc(Buffer::Gm, self.elements * Self::ELEM_BYTES)?;
        // GeLU ships well-pipelined: double-buffered inputs and outputs.
        let ub_in = alloc.alloc_ping_pong(Buffer::Ub, tile_bytes)?;
        let ub_out = alloc.alloc_ping_pong(Buffer::Ub, tile_bytes)?;

        let mut b = KernelBuilder::new(self.name());
        for tile in tiles(self.elements, self.tile_elements) {
            let off = tile.offset * Self::ELEM_BYTES;
            let len = tile.len * Self::ELEM_BYTES;
            let parity = (tile.index % 2) as usize;
            let src = ub_in[parity].slice(0, len);
            let dst = ub_out[parity].slice(0, len);
            b.transfer(TransferPath::GmToUb, gm_in.slice(off, len), src)?;
            b.sync(Component::MteGm, Component::Vector);
            b.compute(
                ComputeUnit::Vector,
                Precision::Fp16,
                tile.len * self.ops_per_element(),
                vec![src],
                vec![dst],
            );
            b.sync(Component::Vector, Component::MteUb);
            b.transfer(TransferPath::UbToGm, dst, gm_out.slice(off, len))?;
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_profile::Profiler;
    use ascend_roofline::{analyze, Bottleneck, Thresholds};
    use ascend_sim::Simulator;

    const N: u64 = 1 << 20;

    #[test]
    fn builds_and_validates() {
        let chip = ChipSpec::training();
        let kernel = Gelu::new(N).build(&chip).unwrap();
        ascend_isa::validate(&kernel, &chip).unwrap();
    }

    #[test]
    fn baseline_gelu_is_vector_compute_bound() {
        let chip = ChipSpec::training();
        let kernel = Gelu::new(N).build(&chip).unwrap();
        let (profile, _) = Profiler::new(chip.clone()).run(&kernel).unwrap();
        let analysis = analyze(&profile, &chip, &Thresholds::default());
        assert_eq!(
            analysis.bottleneck(),
            Bottleneck::ComputeBound(ComputeUnit::Vector),
            "\n{}",
            analysis.summary()
        );
    }

    #[test]
    fn fast_gelu_gives_a_modest_speedup() {
        let chip = ChipSpec::training();
        let sim = Simulator::new(chip.clone());
        let exact = Gelu::new(N).build(&chip).unwrap();
        let fast = Gelu::new(N).with_flags(OptFlags::new().ea(true)).build(&chip).unwrap();
        let t0 = sim.simulate(&exact).unwrap().total_cycles();
        let t1 = sim.simulate(&fast).unwrap().total_cycles();
        let speedup = t0 / t1;
        assert!(
            (1.02..1.8).contains(&speedup),
            "EA gives a modest, memory-limited gain (paper: 1.06x), got {speedup:.2}"
        );
    }

    #[test]
    fn name_reflects_the_algorithm() {
        assert_eq!(Gelu::new(8).name(), "gelu");
        assert_eq!(Gelu::new(8).with_flags(OptFlags::new().ea(true)).name(), "fast_gelu+ea");
    }
}
