//! Normalization operators: LayerNorm and Softmax.
//!
//! LayerNorm doubles as the *fusion target* of the PanGu-α optimization:
//! chains of element-wise operators (Mul, Add, AddN, RealDiv) are replaced
//! by one LayerNorm kernel with far better inter-component parallelism
//! (Section 6.2.1).

use crate::{tiles, Operator, OptFlags};
use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{BufferAllocator, IsaError, Kernel, KernelBuilder};

/// Row-wise LayerNorm over FP16 data: mean, variance, then normalize.
///
/// Generated with double-buffered staging by default — it represents the
/// hand-optimized fused kernel in the Ascend operator library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerNorm {
    elements: u64,
    tile_elements: u64,
    flags: OptFlags,
}

impl LayerNorm {
    const ELEM_BYTES: u64 = 2;
    /// Vector micro-ops per element (mean + variance + normalize).
    pub const OPS_PER_ELEMENT: u64 = 5;

    /// A LayerNorm over `elements` FP16 values.
    #[must_use]
    pub fn new(elements: u64) -> Self {
        LayerNorm { elements, tile_elements: 16 * 1024, flags: OptFlags::new() }
    }

    /// Applies optimization flags.
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }
}

impl Operator for LayerNorm {
    fn name(&self) -> String {
        format!("layernorm{}", self.flags.suffix())
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let tile_bytes = self.tile_elements * Self::ELEM_BYTES;
        let mut alloc = BufferAllocator::new(chip);
        let gm_in = alloc.alloc(Buffer::Gm, self.elements * Self::ELEM_BYTES)?;
        let gm_out = alloc.alloc(Buffer::Gm, self.elements * Self::ELEM_BYTES)?;
        let ub_in = alloc.alloc_ping_pong(Buffer::Ub, tile_bytes)?;
        let ub_out = alloc.alloc_ping_pong(Buffer::Ub, tile_bytes)?;
        let ub_stats = alloc.alloc(Buffer::Ub, 256)?;

        let mut b = KernelBuilder::new(self.name());
        for tile in tiles(self.elements, self.tile_elements) {
            let off = tile.offset * Self::ELEM_BYTES;
            let len = tile.len * Self::ELEM_BYTES;
            let parity = (tile.index % 2) as usize;
            let src = ub_in[parity].slice(0, len);
            let dst = ub_out[parity].slice(0, len);
            b.transfer(TransferPath::GmToUb, gm_in.slice(off, len), src)?;
            b.sync(Component::MteGm, Component::Vector);
            // mean (1 op/elt), variance (2), normalize (2).
            b.compute(ComputeUnit::Vector, Precision::Fp16, tile.len, vec![src], vec![ub_stats]);
            b.compute(
                ComputeUnit::Vector,
                Precision::Fp16,
                2 * tile.len,
                vec![src, ub_stats],
                vec![ub_stats],
            );
            b.compute(
                ComputeUnit::Vector,
                Precision::Fp16,
                2 * tile.len,
                vec![src, ub_stats],
                vec![dst],
            );
            b.sync(Component::Vector, Component::MteUb);
            b.transfer(TransferPath::UbToGm, dst, gm_out.slice(off, len))?;
        }
        Ok(b.build())
    }
}

/// Row-wise Softmax over FP16 data: max, exp-subtract, divide-by-sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Softmax {
    elements: u64,
    tile_elements: u64,
    flags: OptFlags,
}

impl Softmax {
    const ELEM_BYTES: u64 = 2;
    /// Vector micro-ops per element (max + exp + div).
    pub const OPS_PER_ELEMENT: u64 = 6;

    /// A Softmax over `elements` FP16 values.
    #[must_use]
    pub fn new(elements: u64) -> Self {
        Softmax { elements, tile_elements: 16 * 1024, flags: OptFlags::new() }
    }

    /// Applies optimization flags.
    #[must_use]
    pub fn with_flags(mut self, flags: OptFlags) -> Self {
        self.flags = flags;
        self
    }
}

impl Operator for Softmax {
    fn name(&self) -> String {
        format!("softmax{}", self.flags.suffix())
    }

    fn flags(&self) -> OptFlags {
        self.flags
    }

    fn with_flags_dyn(&self, flags: OptFlags) -> Box<dyn Operator> {
        Box::new(self.with_flags(flags))
    }

    fn build(&self, chip: &ChipSpec) -> Result<Kernel, IsaError> {
        let tile_bytes = self.tile_elements * Self::ELEM_BYTES;
        let mut alloc = BufferAllocator::new(chip);
        let gm_in = alloc.alloc(Buffer::Gm, self.elements * Self::ELEM_BYTES)?;
        let gm_out = alloc.alloc(Buffer::Gm, self.elements * Self::ELEM_BYTES)?;
        let staged = if self.flags.has_pp() || self.flags.has_rsd() {
            alloc.alloc_ping_pong(Buffer::Ub, tile_bytes)?.to_vec()
        } else {
            vec![alloc.alloc(Buffer::Ub, tile_bytes)?]
        };
        let ub_stats = alloc.alloc(Buffer::Ub, 256)?;

        let mut b = KernelBuilder::new(self.name());
        for tile in tiles(self.elements, self.tile_elements) {
            let off = tile.offset * Self::ELEM_BYTES;
            let len = tile.len * Self::ELEM_BYTES;
            let src = staged[(tile.index as usize) % staged.len()].slice(0, len);
            b.transfer(TransferPath::GmToUb, gm_in.slice(off, len), src)?;
            b.sync(Component::MteGm, Component::Vector);
            b.compute(ComputeUnit::Vector, Precision::Fp16, tile.len, vec![src], vec![ub_stats]);
            b.compute(
                ComputeUnit::Vector,
                Precision::Fp16,
                3 * tile.len,
                vec![src, ub_stats],
                vec![src],
            );
            b.compute(
                ComputeUnit::Vector,
                Precision::Fp16,
                2 * tile.len,
                vec![src, ub_stats],
                vec![src],
            );
            b.sync(Component::Vector, Component::MteUb);
            b.transfer(TransferPath::UbToGm, src, gm_out.slice(off, len))?;
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_isa::KernelStats;
    use ascend_sim::Simulator;

    const N: u64 = 1 << 19;

    #[test]
    fn both_build_and_validate() {
        let chip = ChipSpec::training();
        for kernel in
            [LayerNorm::new(N).build(&chip).unwrap(), Softmax::new(N).build(&chip).unwrap()]
        {
            ascend_isa::validate(&kernel, &chip).unwrap();
        }
    }

    #[test]
    fn op_counts_match_documented_costs() {
        let chip = ChipSpec::training();
        let ln = LayerNorm::new(N).build(&chip).unwrap();
        let sm = Softmax::new(N).build(&chip).unwrap();
        assert_eq!(
            KernelStats::of(&ln).ops_of(ComputeUnit::Vector, Precision::Fp16),
            LayerNorm::OPS_PER_ELEMENT * N
        );
        assert_eq!(
            KernelStats::of(&sm).ops_of(ComputeUnit::Vector, Precision::Fp16),
            Softmax::OPS_PER_ELEMENT * N
        );
    }

    #[test]
    fn fused_layernorm_beats_the_elementwise_chain() {
        // The PanGu-alpha fusion: Mul + Add + AddN + RealDiv, all baseline,
        // versus one LayerNorm over the same data.
        use crate::{Elementwise, EltwiseKind};
        let chip = ChipSpec::training();
        let sim = Simulator::new(chip.clone());
        let mut chain_cycles = 0.0;
        for kind in [EltwiseKind::Mul, EltwiseKind::Add, EltwiseKind::AddN(3), EltwiseKind::RealDiv]
        {
            let k = Elementwise::new(kind, N).build(&chip).unwrap();
            chain_cycles += sim.simulate(&k).unwrap().total_cycles();
        }
        let ln = LayerNorm::new(N).build(&chip).unwrap();
        let fused_cycles = sim.simulate(&ln).unwrap().total_cycles();
        assert!(
            fused_cycles < 0.5 * chain_cycles,
            "fusing the chain into LayerNorm must save most of the traffic: {fused_cycles} vs {chain_cycles}"
        );
    }

    #[test]
    fn softmax_pipelines_with_pp() {
        let chip = ChipSpec::training();
        let sim = Simulator::new(chip.clone());
        let base = Softmax::new(N).build(&chip).unwrap();
        let pp = Softmax::new(N).with_flags(OptFlags::new().pp(true)).build(&chip).unwrap();
        let t0 = sim.simulate(&base).unwrap().total_cycles();
        let t1 = sim.simulate(&pp).unwrap().total_cycles();
        assert!(t1 < t0, "ping-pong must help softmax: {t1} !< {t0}");
    }
}
