use ascend_arch::ChipSpec;
use ascend_ops::*;
use ascend_profile::Profiler;
use ascend_roofline::{analyze, Thresholds};

fn show(chip: &ChipSpec, op: &dyn Operator) {
    let k = op.build(chip).unwrap();
    let (p, tr) = Profiler::new(chip.clone()).run(&k).unwrap();
    let a = analyze(&p, chip, &Thresholds::default());
    println!(
        "{:<42} {:>10.0} cy  peakU {:>5.1}%  {}",
        k.name(),
        tr.total_cycles(),
        a.peak_utilization() * 100.0,
        a.bottleneck()
    );
}

fn main() {
    let chip = ChipSpec::training();
    const E: u64 = 1 << 19;
    show(&chip, &Elementwise::new(EltwiseKind::Mul, E));
    show(&chip, &Elementwise::new(EltwiseKind::Add, E));
    show(&chip, &Elementwise::new(EltwiseKind::AddN(3), E));
    show(&chip, &Elementwise::new(EltwiseKind::RealDiv, E));
    show(&chip, &Dropout::new(E));
    show(&chip, &Cast::new(E));
    show(&chip, &TransData::new(E));
    show(&chip, &Softmax::new(E));
    show(&chip, &Gelu::new(E));
    show(&chip, &LayerNorm::new(E));
    show(&chip, &MatMul::new(512, 512, 512).with_flags(OptFlags::new().pp(true)));
    show(&chip, &MatMulAdd::new(512, 512, 512).with_flags(OptFlags::new().pp(true)));
    show(&chip, &BatchMatMul::new(4, 256, 256, 256).with_flags(OptFlags::new().pp(true)));
    show(&chip, &Conv2d::new(1 << 17, 288));
    show(&chip, &Conv2d::new(1 << 18, 576).with_flags(OptFlags::new().mrt(true)));
    show(&chip, &Depthwise::new(1 << 17));
    show(&chip, &AddRelu::new(1 << 17));
    show(&chip, &AvgPool::new(1 << 14));
    show(&chip, &FullyConnection::new(32, 256, 1024));
}
