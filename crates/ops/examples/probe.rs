use ascend_arch::*;
use ascend_ops::*;
use ascend_profile::Profiler;
use ascend_roofline::{analyze, Thresholds};

fn show(tag: &str, chip: &ChipSpec, kernel: &ascend_isa::Kernel) {
    let (p, tr) = Profiler::new(chip.clone()).run(kernel).unwrap();
    let a = analyze(&p, chip, &Thresholds::default());
    println!("== {tag}: {:.0} cycles", tr.total_cycles());
    print!("{}", a.summary());
}

fn main() {
    let chip = ChipSpec::training();
    show("add_relu base", &chip, &AddRelu::new(1 << 20).build(&chip).unwrap());
    show(
        "add_relu rsd",
        &chip,
        &AddRelu::new(1 << 20).with_flags(OptFlags::new().rsd(true)).build(&chip).unwrap(),
    );
    show(
        "add_relu rsd+mrt",
        &chip,
        &AddRelu::new(1 << 20)
            .with_flags(OptFlags::new().rsd(true).mrt(true))
            .build(&chip)
            .unwrap(),
    );
    show("mul base", &chip, &Elementwise::new(EltwiseKind::Mul, 1 << 19).build(&chip).unwrap());
    show(
        "mul rsd",
        &chip,
        &Elementwise::new(EltwiseKind::Mul, 1 << 19)
            .with_flags(OptFlags::new().rsd(true))
            .build(&chip)
            .unwrap(),
    );
    let ichip = ChipSpec::inference();
    show("avgpool base", &ichip, &AvgPool::new(1 << 16).build(&ichip).unwrap());
    show(
        "avgpool aip",
        &ichip,
        &AvgPool::new(1 << 16).with_flags(OptFlags::new().aip(true)).build(&ichip).unwrap(),
    );
    show("gelu base", &chip, &Gelu::new(1 << 20).build(&chip).unwrap());
    show(
        "gelu ea",
        &chip,
        &Gelu::new(1 << 20).with_flags(OptFlags::new().ea(true)).build(&chip).unwrap(),
    );
    show(
        "dw full",
        &chip,
        &Depthwise::new(1 << 20)
            .with_flags(OptFlags::new().ais(true).rus(true).pp(true).itg(true).mrt(true))
            .build(&chip)
            .unwrap(),
    );
    show("conv base", &chip, &Conv2d::new(1 << 18, 288).build(&chip).unwrap());
    show(
        "conv tuned",
        &chip,
        &Conv2d::new(1 << 18, 288)
            .with_flags(OptFlags::new().rsd(true).mrt(true).pp(true))
            .build(&chip)
            .unwrap(),
    );
    show("fc base", &chip, &FullyConnection::new(32, 1024, 1024).build(&chip).unwrap());
    show(
        "fc itg",
        &chip,
        &FullyConnection::new(32, 1024, 1024)
            .with_flags(OptFlags::new().itg(true))
            .build(&chip)
            .unwrap(),
    );
}
