//! Property tests over the roofline math.

use ascend_arch::{ChipSpec, Component, ComputeUnit, MteEngine, Precision, TransferPath};
use ascend_profile::Profile;
use ascend_roofline::{
    analyze, average_compute_rate, ideal_compute_rate, ideal_mte_rate, max_compute_rate,
    Bottleneck, Thresholds,
};
use proptest::prelude::*;

fn synthetic_profile(
    cube_fp16: u64,
    cube_int8: u64,
    gm_bytes: u64,
    ub_bytes: u64,
    active_frac: f64,
) -> Profile {
    let mut p = Profile::empty("prop");
    p.total_cycles = 1_000_000.0;
    if cube_fp16 > 0 {
        p.ops.insert((ComputeUnit::Cube, Precision::Fp16), cube_fp16);
    }
    if cube_int8 > 0 {
        p.ops.insert((ComputeUnit::Cube, Precision::Int8), cube_int8);
    }
    if gm_bytes > 0 {
        p.bytes.insert(TransferPath::GmToL1, gm_bytes);
        p.active_cycles.insert(Component::MteGm, p.total_cycles * active_frac);
    }
    if ub_bytes > 0 {
        p.bytes.insert(TransferPath::UbToGm, ub_bytes);
        p.active_cycles.insert(Component::MteUb, p.total_cycles * active_frac);
    }
    if cube_fp16 + cube_int8 > 0 {
        p.active_cycles.insert(Component::Cube, p.total_cycles * active_frac);
    }
    p
}

proptest! {
    #[test]
    fn harmonic_mean_is_bounded_and_can_beat_the_average(
        fp16 in 1u64..10_000_000, int8 in 1u64..10_000_000,
    ) {
        let chip = ChipSpec::training();
        let p = synthetic_profile(fp16, int8, 0, 0, 0.5);
        let ideal = ideal_compute_rate(&chip, &p, ComputeUnit::Cube).unwrap();
        let max = max_compute_rate(&chip, &p, ComputeUnit::Cube).unwrap();
        prop_assert!(ideal <= max + 1e-9, "never above the fastest precision peak");
        // With equal op counts the weighted harmonic mean sits below the
        // unweighted arithmetic mean — but with INT8-heavy mixes it can
        // exceed it, which is exactly why the paper rejects the average
        // as the ideal (Section 4.1).
        if fp16 == int8 {
            let avg = average_compute_rate(&chip, &p, ComputeUnit::Cube).unwrap();
            prop_assert!(ideal <= avg + 1e-9);
        }
        let int8_heavy = synthetic_profile(1, 10_000_000, 0, 0, 0.5);
        let ideal_heavy = ideal_compute_rate(&chip, &int8_heavy, ComputeUnit::Cube).unwrap();
        let avg_heavy = average_compute_rate(&chip, &int8_heavy, ComputeUnit::Cube).unwrap();
        prop_assert!(ideal_heavy > avg_heavy, "INT8-heavy mixes beat the naive average");
    }

    #[test]
    fn ideal_mte_rate_is_weighted_between_path_peaks(
        a in 1u64..100_000_000, b in 1u64..100_000_000,
    ) {
        let chip = ChipSpec::training();
        let mut p = Profile::empty("two_paths");
        p.bytes.insert(TransferPath::GmToL0A, a);
        p.bytes.insert(TransferPath::GmToL0B, b);
        let ideal = ideal_mte_rate(&chip, &p, MteEngine::Gm).unwrap();
        let fast = chip.transfer(TransferPath::GmToL0A).unwrap().bytes_per_cycle;
        let slow = chip.transfer(TransferPath::GmToL0B).unwrap().bytes_per_cycle;
        prop_assert!(ideal >= slow - 1e-9 && ideal <= fast + 1e-9);
    }

    #[test]
    fn classification_is_total_and_consistent(
        fp16 in 0u64..50_000_000, int8 in 0u64..50_000_000,
        gm in 0u64..50_000_000, ub in 0u64..50_000_000,
        active in 0.05f64..1.0,
    ) {
        let chip = ChipSpec::training();
        let p = synthetic_profile(fp16, int8, gm, ub, active);
        let analysis = analyze(&p, &chip, &Thresholds::default());
        match analysis.bottleneck() {
            Bottleneck::Idle => prop_assert!(analysis.metrics().is_empty()),
            Bottleneck::ComputeBound(_) | Bottleneck::MteBound(_) => {
                let thresholds = Thresholds::default();
                let any_bound = analysis
                    .metrics()
                    .iter()
                    .any(|m| m.utilization >= thresholds.bound_for(m.component) - 1e-12);
                prop_assert!(any_bound);
            }
            Bottleneck::InsufficientParallelism => {
                let r = Thresholds::default().parallelism_ratio;
                for m in analysis.metrics() {
                    prop_assert!(m.time_ratio < r);
                }
            }
            Bottleneck::InefficientMte(c) => {
                let busiest = analysis.busiest_component().unwrap();
                prop_assert_eq!(busiest.component, c);
            }
            Bottleneck::InefficientCompute(u) => {
                let busiest = analysis.busiest_component().unwrap();
                prop_assert_eq!(busiest.component.as_unit(), Some(u));
            }
        }
    }

    #[test]
    fn more_active_time_never_reduces_time_ratio(
        gm in 1u64..50_000_000, a in 0.1f64..0.5, delta in 0.01f64..0.4,
    ) {
        let chip = ChipSpec::training();
        let p1 = synthetic_profile(0, 0, gm, 0, a);
        let p2 = synthetic_profile(0, 0, gm, 0, a + delta);
        let m1 = analyze(&p1, &chip, &Thresholds::default());
        let m2 = analyze(&p2, &chip, &Thresholds::default());
        let r1 = m1.metrics_of(Component::MteGm).unwrap().time_ratio;
        let r2 = m2.metrics_of(Component::MteGm).unwrap().time_ratio;
        prop_assert!(r2 > r1);
    }
}
