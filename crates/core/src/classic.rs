//! Classic roofline models (paper, Section 2.3 / Figure 2): the original
//! DRAM roofline and the hierarchical roofline, provided as baselines.

use serde::{Deserialize, Serialize};

/// Which side of the ridge point a kernel falls on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RooflineRegion {
    /// Left of the ridge: performance limited by memory bandwidth.
    MemoryBound,
    /// Right of the ridge: performance limited by arithmetic throughput.
    ComputeBound,
}

/// The original DRAM roofline model (Williams et al., CACM 2009).
///
/// # Examples
///
/// ```
/// use ascend_roofline::classic::{DramRoofline, RooflineRegion};
///
/// // 1 TFLOP/s peak, 100 GB/s DRAM.
/// let model = DramRoofline::new(1e12, 1e11);
/// assert_eq!(model.ridge_intensity(), 10.0);
/// assert_eq!(model.classify(2.0), RooflineRegion::MemoryBound);
/// assert_eq!(model.classify(50.0), RooflineRegion::ComputeBound);
/// assert_eq!(model.attainable(2.0), 2e11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramRoofline {
    peak_flops: f64,
    peak_bandwidth: f64,
}

impl DramRoofline {
    /// Creates a roofline from a peak arithmetic rate (ops/s) and a peak
    /// DRAM bandwidth (bytes/s).
    ///
    /// # Panics
    ///
    /// Panics if either rate is not strictly positive.
    #[must_use]
    pub fn new(peak_flops: f64, peak_bandwidth: f64) -> Self {
        assert!(peak_flops > 0.0 && peak_bandwidth > 0.0, "peaks must be positive");
        DramRoofline { peak_flops, peak_bandwidth }
    }

    /// Peak arithmetic rate (the horizontal ceiling).
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        self.peak_flops
    }

    /// Peak bandwidth (the slope of the diagonal ceiling).
    #[must_use]
    pub fn peak_bandwidth(&self) -> f64 {
        self.peak_bandwidth
    }

    /// Arithmetic intensity of the ridge point.
    #[must_use]
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_flops / self.peak_bandwidth
    }

    /// Attainable performance at arithmetic intensity `ai`:
    /// `min(peak, ai × bandwidth)`.
    #[must_use]
    pub fn attainable(&self, ai: f64) -> f64 {
        (ai * self.peak_bandwidth).min(self.peak_flops)
    }

    /// Memory- vs. compute-bound classification of intensity `ai`.
    #[must_use]
    pub fn classify(&self, ai: f64) -> RooflineRegion {
        if ai < self.ridge_intensity() {
            RooflineRegion::MemoryBound
        } else {
            RooflineRegion::ComputeBound
        }
    }

    /// The performance point of a kernel that executed `ops` operations
    /// over `bytes` DRAM bytes in `seconds`: `(ai, ops_per_sec)`.
    #[must_use]
    pub fn point(&self, ops: f64, bytes: f64, seconds: f64) -> (f64, f64) {
        (ops / bytes, ops / seconds)
    }
}

/// One ceiling of a hierarchical roofline: a memory level or an
/// arithmetic peak.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyLevel {
    /// Display name, e.g. `"L2"` or `"HBM"` or `"TensorCore FP16"`.
    pub name: String,
    /// Bandwidth in bytes/s for memory levels, ops/s for arithmetic
    /// ceilings.
    pub rate: f64,
    /// Whether this is an arithmetic ceiling (`true`) or a bandwidth
    /// ceiling (`false`).
    pub arithmetic: bool,
}

/// The hierarchical roofline model (Yang et al.): one bandwidth ceiling
/// per memory level, one arithmetic ceiling per precision/unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalRoofline {
    levels: Vec<HierarchyLevel>,
}

impl HierarchicalRoofline {
    /// Creates a model from its ceilings.
    #[must_use]
    pub fn new(levels: Vec<HierarchyLevel>) -> Self {
        HierarchicalRoofline { levels }
    }

    /// All ceilings.
    #[must_use]
    pub fn levels(&self) -> &[HierarchyLevel] {
        &self.levels
    }

    /// Attainable performance at intensity `ai` measured against the
    /// memory level `name`, bounded by the *lowest* arithmetic ceiling at
    /// or above it. Returns `None` for an unknown level.
    #[must_use]
    pub fn attainable(&self, name: &str, ai: f64) -> Option<f64> {
        let level = self.levels.iter().find(|l| l.name == name && !l.arithmetic)?;
        let arithmetic_peak = self
            .levels
            .iter()
            .filter(|l| l.arithmetic)
            .map(|l| l.rate)
            .fold(f64::INFINITY, f64::min);
        Some((ai * level.rate).min(arithmetic_peak))
    }

    /// The binding level (lowest attainable ceiling) for intensity `ai`.
    #[must_use]
    pub fn binding_level(&self, ai: f64) -> Option<&HierarchyLevel> {
        self.levels.iter().min_by(|a, b| {
            let ra = if a.arithmetic { a.rate } else { ai * a.rate };
            let rb = if b.arithmetic { b.rate } else { ai * b.rate };
            ra.total_cmp(&rb)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_point_separates_regions() {
        let model = DramRoofline::new(2e12, 4e11);
        let ridge = model.ridge_intensity();
        assert_eq!(model.classify(ridge * 0.5), RooflineRegion::MemoryBound);
        assert_eq!(model.classify(ridge * 2.0), RooflineRegion::ComputeBound);
        // At the ridge itself both limits coincide.
        assert!((model.attainable(ridge) - model.peak_flops()).abs() < 1e-3);
    }

    #[test]
    fn attainable_is_monotone_and_saturates() {
        let model = DramRoofline::new(1e12, 1e11);
        assert!(model.attainable(1.0) < model.attainable(5.0));
        assert_eq!(model.attainable(100.0), model.attainable(1000.0));
    }

    #[test]
    #[should_panic(expected = "peaks must be positive")]
    fn zero_peak_panics() {
        let _ = DramRoofline::new(0.0, 1.0);
    }

    #[test]
    fn point_computes_intensity_and_rate() {
        let model = DramRoofline::new(1e12, 1e11);
        let (ai, perf) = model.point(1e9, 1e8, 1e-3);
        assert!((ai - 10.0).abs() < 1e-9);
        assert!((perf - 1e12).abs() < 1.0);
    }

    fn gpu_like() -> HierarchicalRoofline {
        HierarchicalRoofline::new(vec![
            HierarchyLevel { name: "HBM".into(), rate: 1.5e12, arithmetic: false },
            HierarchyLevel { name: "L2".into(), rate: 4e12, arithmetic: false },
            HierarchyLevel { name: "L1".into(), rate: 1.2e13, arithmetic: false },
            HierarchyLevel { name: "FP32".into(), rate: 2e13, arithmetic: true },
            HierarchyLevel { name: "TensorCore".into(), rate: 3e14, arithmetic: true },
        ])
    }

    #[test]
    fn hierarchical_attainable_per_level() {
        let model = gpu_like();
        // Low intensity: bandwidth-limited at every level, HBM lowest.
        let hbm = model.attainable("HBM", 1.0).unwrap();
        let l1 = model.attainable("L1", 1.0).unwrap();
        assert!(hbm < l1);
        // Very high intensity: both clip at the lowest arithmetic ceiling.
        assert_eq!(model.attainable("HBM", 1e9), model.attainable("L1", 1e9));
        assert_eq!(model.attainable("missing", 1.0), None);
    }

    #[test]
    fn binding_level_shifts_with_intensity() {
        let model = gpu_like();
        assert_eq!(model.binding_level(0.1).unwrap().name, "HBM");
        assert_eq!(model.binding_level(1e9).unwrap().name, "FP32");
    }
}
