#![warn(missing_docs)]

//! The component-based roofline model for the Ascend architecture — the
//! primary contribution of "Squeezing Operator Performance Potential for
//! the Ascend Architecture" (ASPLOS 2025), Section 4.
//!
//! The model treats each *component* (Scalar, Vector, Cube, MTE-GM,
//! MTE-L1, MTE-UB) as a single entity:
//!
//! 1. **Operator-aware ideal performance** ([`ideal_compute_rate`] /
//!    [`ideal_mte_rate`]): the ideal rate of a component is the *weighted
//!    harmonic mean* of its constituent precision peaks (or path
//!    bandwidths), weighted by the operator's own operation (byte)
//!    counts — Definition 1 / Eq. 4 of the paper.
//! 2. **Utilization** ([`ComponentMetrics`]): actual rate over ideal rate
//!    (Eq. 5), decomposed into execution efficiency `E` and active-time
//!    ratio `R` with `U = E · R` (Eq. 6).
//! 3. **Bottleneck classification** ([`analyze`]): a component whose
//!    utilization exceeds its bound threshold is the bottleneck
//!    (*compute bound* / *MTE bound*); otherwise low time ratios across
//!    the board mean *insufficient parallelism*, and a high time ratio
//!    with low efficiency pins an *inefficient* compute or MTE component.
//! 4. **Pruning and visualization** ([`pruning`], [`RooflineChart`]): the naive
//!    9 × 20 = 180 precision-transfer rooflines collapse to at most 7
//!    component pairs; [`RooflineChart`] renders them as ASCII or SVG.
//!
//! The baseline models the paper compares against are also provided:
//! [`classic::DramRoofline`], [`classic::HierarchicalRoofline`], and the
//! misdiagnosing [`naive`] extension (Figure 3).
//!
//! # Examples
//!
//! ```
//! use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
//! use ascend_isa::{KernelBuilder, Region};
//! use ascend_profile::Profiler;
//! use ascend_roofline::{analyze, Thresholds};
//!
//! let chip = ChipSpec::training();
//! let mut b = KernelBuilder::new("add");
//! let gm = Region::new(Buffer::Gm, 0, 65536);
//! let ub = Region::new(Buffer::Ub, 0, 65536);
//! b.transfer(TransferPath::GmToUb, gm, ub)?;
//! b.sync(Component::MteGm, Component::Vector);
//! b.compute(ComputeUnit::Vector, Precision::Fp16, 32768, vec![ub], vec![ub]);
//!
//! let (profile, _) = Profiler::new(chip.clone()).run(&b.build())?;
//! let analysis = analyze(&profile, &chip, &Thresholds::default());
//! println!("{}", analysis.summary());
//! assert!(!analysis.metrics().is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod analysis;
pub mod classic;
mod ideal;
mod metrics;
pub mod naive;
mod plot;
pub mod pruning;
pub mod report;

pub use analysis::{analyze, Bottleneck, RooflineAnalysis, Thresholds};
pub use ideal::{average_compute_rate, ideal_compute_rate, ideal_mte_rate, max_compute_rate};
pub use metrics::ComponentMetrics;
pub use plot::{Ceiling, CeilingKind, PerfPoint, RooflineChart};
