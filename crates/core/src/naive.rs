//! The naive per-precision × per-transfer roofline extension, kept as a
//! faithful *misdiagnosing* baseline (paper, Section 2.3 and Figure 3).
//!
//! The naive model builds one roofline per (precision-compute unit,
//! transfer path) combination — 9 × 20 = 180 on this chip — and evaluates
//! each precision and each transfer *independently over the whole operator
//! time*, ignoring that siblings of the same component execute serially.
//! The two classic failure cases:
//!
//! - **Figure 3a**: two matrices stream through one MTE back-to-back; the
//!   engine is saturated, but the naive model reports each path at 67%/33%
//!   "utilization".
//! - **Figure 3b**: FP16 and INT8 run back-to-back on the Cube at peak;
//!   the naive model reports 67%/33% per-precision utilization.

use ascend_arch::{ChipSpec, ComputeUnit, Precision, TransferPath};
use ascend_profile::Profile;
use serde::{Deserialize, Serialize};

/// Number of naive roofline combinations on this chip (Section 2.3).
#[must_use]
pub fn combination_count() -> usize {
    let precision_units: usize = ComputeUnit::ALL.iter().map(|u| u.precisions().len()).sum();
    precision_units * TransferPath::ALL.len()
}

/// The naive utilization of one transfer path: bytes over the whole
/// operator time, divided by the path's peak bandwidth.
///
/// Returns `None` when the operator moved no bytes on `path` or the
/// profile has no time.
#[must_use]
pub fn transfer_utilization(profile: &Profile, chip: &ChipSpec, path: TransferPath) -> Option<f64> {
    let bytes = profile.bytes_on_path(path);
    if bytes == 0 || profile.total_cycles <= 0.0 {
        return None;
    }
    let peak = chip.transfer(path).ok()?.bytes_per_cycle;
    Some(bytes as f64 / profile.total_cycles / peak)
}

/// The naive utilization of one precision on one unit: operations over the
/// whole operator time, divided by that precision's peak.
#[must_use]
pub fn precision_utilization(
    profile: &Profile,
    chip: &ChipSpec,
    unit: ComputeUnit,
    precision: Precision,
) -> Option<f64> {
    let ops = profile.ops_of(unit, precision);
    if ops == 0 || profile.total_cycles <= 0.0 {
        return None;
    }
    let peak = chip.peak_ops_per_cycle(unit, precision).ok()?;
    Some(ops as f64 / profile.total_cycles / peak)
}

/// One naive roofline point: a (precision-unit, path) pair with its two
/// independent utilizations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NaivePoint {
    /// The compute unit of the pair.
    pub unit: ComputeUnit,
    /// The precision of the pair.
    pub precision: Precision,
    /// The transfer path of the pair.
    pub path: TransferPath,
    /// Naive per-precision compute utilization.
    pub compute_utilization: f64,
    /// Naive per-path bandwidth utilization.
    pub transfer_utilization: f64,
}

/// Builds every naive point the operator populates. The length of the
/// result is what makes the naive chart unreadable (up to 180 points).
#[must_use]
pub fn naive_points(profile: &Profile, chip: &ChipSpec) -> Vec<NaivePoint> {
    let mut points = Vec::new();
    for unit in ComputeUnit::ALL {
        for &precision in unit.precisions() {
            let Some(cu) = precision_utilization(profile, chip, unit, precision) else {
                continue;
            };
            for path in TransferPath::ALL {
                let Some(tu) = transfer_utilization(profile, chip, path) else {
                    continue;
                };
                points.push(NaivePoint {
                    unit,
                    precision,
                    path,
                    compute_utilization: cu,
                    transfer_utilization: tu,
                });
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ideal_compute_rate, ideal_mte_rate};
    use ascend_arch::MteEngine;

    #[test]
    fn one_hundred_eighty_combinations() {
        assert_eq!(combination_count(), 180);
    }

    /// Reconstructs Figure 3a: matrix A (2x the bytes of B) through
    /// GM->L0A then GM->L0B, with the MTE-GM fully occupied the whole
    /// time. The naive model splits utilization 67%/33%; the component
    /// model reports 100%.
    #[test]
    fn figure_3a_misdiagnosis_vs_component_model() {
        let chip = ChipSpec::training();
        let bw_a = chip.transfer(TransferPath::GmToL0A).unwrap().bytes_per_cycle;
        let bw_b = chip.transfer(TransferPath::GmToL0B).unwrap().bytes_per_cycle;
        // Pick byte counts so each path runs at its own peak and A takes
        // twice as long as B: bytes_a = 2 * t * bw_a is not needed — the
        // figure wants time split 67/33, so bytes_a/bw_a = 2 * bytes_b/bw_b.
        let t_total = 3_000_000.0;
        let bytes_a = (bw_a * (2.0 / 3.0) * t_total) as u64;
        let bytes_b = (bw_b * (1.0 / 3.0) * t_total) as u64;
        let mut p = Profile::empty("fig3a");
        p.total_cycles = t_total;
        p.bytes.insert(TransferPath::GmToL0A, bytes_a);
        p.bytes.insert(TransferPath::GmToL0B, bytes_b);
        p.active_cycles.insert(ascend_arch::Component::MteGm, t_total);

        // Naive: each path looks underutilized.
        let ua = transfer_utilization(&p, &chip, TransferPath::GmToL0A).unwrap();
        let ub = transfer_utilization(&p, &chip, TransferPath::GmToL0B).unwrap();
        assert!((ua - 2.0 / 3.0).abs() < 1e-6, "naive A utilization {ua}");
        assert!((ub - 1.0 / 3.0).abs() < 1e-6, "naive B utilization {ub}");

        // Component model: the MTE-GM is at 100%.
        let ideal = ideal_mte_rate(&chip, &p, MteEngine::Gm).unwrap();
        let actual = (bytes_a + bytes_b) as f64 / t_total;
        let utilization = actual / ideal;
        assert!((utilization - 1.0).abs() < 1e-6, "component utilization {utilization}");
    }

    /// Reconstructs Figure 3b: equal FP16/INT8 operand counts on a fully
    /// busy Cube. Naive: 67%/33% per precision. Component model: 100%.
    #[test]
    fn figure_3b_misdiagnosis_vs_component_model() {
        let chip = ChipSpec::training();
        let p16 = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Fp16).unwrap();
        let p8 = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Int8).unwrap();
        // Equal op counts; FP16 takes 2/3 of the time, INT8 takes 1/3.
        let ops: u64 = 1 << 24;
        let t_total = ops as f64 / p16 + ops as f64 / p8;
        let mut p = Profile::empty("fig3b");
        p.total_cycles = t_total;
        p.ops.insert((ComputeUnit::Cube, Precision::Fp16), ops);
        p.ops.insert((ComputeUnit::Cube, Precision::Int8), ops);
        p.active_cycles.insert(ascend_arch::Component::Cube, t_total);

        let u16 = precision_utilization(&p, &chip, ComputeUnit::Cube, Precision::Fp16).unwrap();
        let u8 = precision_utilization(&p, &chip, ComputeUnit::Cube, Precision::Int8).unwrap();
        assert!((u16 - 2.0 / 3.0).abs() < 1e-6, "naive fp16 utilization {u16}");
        assert!((u8 - 1.0 / 3.0).abs() < 1e-6, "naive int8 utilization {u8}");

        let ideal = ideal_compute_rate(&chip, &p, ComputeUnit::Cube).unwrap();
        let actual = (2 * ops) as f64 / t_total;
        assert!(((actual / ideal) - 1.0).abs() < 1e-6);
        // And the actual rate is 2/3 of the INT8 peak, as the paper notes.
        assert!((actual - p8 * 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn naive_points_multiply_quickly() {
        let chip = ChipSpec::training();
        let mut p = Profile::empty("busy");
        p.total_cycles = 1000.0;
        p.ops.insert((ComputeUnit::Cube, Precision::Fp16), 1000);
        p.ops.insert((ComputeUnit::Cube, Precision::Int8), 1000);
        p.bytes.insert(TransferPath::GmToL0A, 1000);
        p.bytes.insert(TransferPath::GmToL0B, 1000);
        p.bytes.insert(TransferPath::GmToL1, 1000);
        // 2 precision-units x 3 paths = 6 points for a single operator.
        assert_eq!(naive_points(&p, &chip).len(), 6);
    }

    #[test]
    fn empty_profile_has_no_points() {
        let chip = ChipSpec::training();
        let p = Profile::empty("idle");
        assert!(naive_points(&p, &chip).is_empty());
        assert_eq!(transfer_utilization(&p, &chip, TransferPath::GmToUb), None);
        assert_eq!(precision_utilization(&p, &chip, ComputeUnit::Cube, Precision::Fp16), None);
    }
}
