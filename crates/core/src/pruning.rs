//! Combination pruning (paper, Section 4.3): from 180 naive rooflines to
//! at most 7 component pairs.
//!
//! The chain on the modelled chip:
//!
//! 1. **Naive**: 9 precision-compute units × 20 transfer paths = 180.
//! 2. **Component abstraction**: precisions merge into their unit,
//!    MTE-scheduled paths merge into their engine → 3 compute components ×
//!    (3 MTEs + 11 direct paths) = 42 memory-compute pairs. (The paper's
//!    Figure 1 counts 12 direct paths, giving 45; the one-path difference
//!    is an artifact of the topology reconstruction and does not affect
//!    the pruned result.)
//! 3. **Prune direct paths**: fixed-function ports (`L0A→Cube`, …) are
//!    inevitable and leave no room for optimization → 3 × 3 = 9.
//! 4. **Prune impossible pairs**: `(MTE-L1, Vector)` and
//!    `(MTE-L1, Scalar)` cannot occur → **7**.

use ascend_arch::{Component, ComputeUnit, TransferPath};

/// A memory-compute component pair retained by the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentPair {
    /// The memory (MTE) component.
    pub memory: Component,
    /// The compute unit.
    pub compute: ComputeUnit,
}

/// Count of naive (precision-unit × transfer) combinations: 180.
#[must_use]
pub fn naive_combinations() -> usize {
    crate::naive::combination_count()
}

/// Count of pairs after the component abstraction but before pruning.
#[must_use]
pub fn component_combinations() -> usize {
    let direct = TransferPath::ALL.iter().filter(|p| p.mte().is_none()).count();
    let memory_components = Component::MEMORY.len() + direct;
    Component::COMPUTE.len() * memory_components
}

/// The surviving (MTE, compute-unit) pairs — at most 7.
#[must_use]
pub fn pruned_pairs() -> Vec<ComponentPair> {
    let mut pairs = Vec::new();
    for memory in Component::MEMORY {
        for compute in ComputeUnit::ALL {
            if memory.pairs_with(compute) {
                pairs.push(ComponentPair { memory, compute });
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_pruning_chain() {
        assert_eq!(naive_combinations(), 180);
        assert_eq!(component_combinations(), 42);
        assert_eq!(pruned_pairs().len(), 7);
    }

    #[test]
    fn mte_l1_only_pairs_with_cube() {
        let pairs = pruned_pairs();
        let l1_partners: Vec<ComputeUnit> =
            pairs.iter().filter(|p| p.memory == Component::MteL1).map(|p| p.compute).collect();
        assert_eq!(l1_partners, vec![ComputeUnit::Cube]);
    }

    #[test]
    fn gm_and_ub_pair_with_everything() {
        let pairs = pruned_pairs();
        for memory in [Component::MteGm, Component::MteUb] {
            let partners = pairs.iter().filter(|p| p.memory == memory).count();
            assert_eq!(partners, 3);
        }
    }
}
