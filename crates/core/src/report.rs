//! Markdown report generation: one self-contained document per analyzed
//! operator, combining the metric table, the classification, and the
//! chart — the artifact an engineer would attach to an optimization
//! ticket.

use crate::{naive, RooflineAnalysis, RooflineChart};
use ascend_arch::ChipSpec;
use ascend_profile::Profile;
use std::fmt::Write as _;

/// Renders a self-contained markdown report for one analysis.
///
/// Sections: header with the verdict, the per-component metric table
/// (ideal/actual rates, `U`, `E`, `R`), the per-path and per-precision
/// breakdown used to localize inefficiencies (Section 4.2's "largest
/// number of bytes transferred" heuristic), and the ASCII roofline.
///
/// # Examples
///
/// ```
/// use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
/// use ascend_isa::{KernelBuilder, Region};
/// use ascend_profile::Profiler;
/// use ascend_roofline::{analyze, report, Thresholds};
///
/// let chip = ChipSpec::training();
/// let mut b = KernelBuilder::new("scale");
/// let gm = Region::new(Buffer::Gm, 0, 4096);
/// let ub = Region::new(Buffer::Ub, 0, 4096);
/// b.transfer(TransferPath::GmToUb, gm, ub)?;
/// b.sync(Component::MteGm, Component::Vector);
/// b.compute(ComputeUnit::Vector, Precision::Fp16, 2048, vec![ub], vec![ub]);
/// let (profile, _) = Profiler::new(chip.clone()).run(&b.build())?;
/// let analysis = analyze(&profile, &chip, &Thresholds::default());
/// let md = report::to_markdown(&analysis, &profile, &chip);
/// assert!(md.contains("## Components"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn to_markdown(analysis: &RooflineAnalysis, profile: &Profile, chip: &ChipSpec) -> String {
    let mut md = String::new();
    let _ = writeln!(md, "# Roofline report: `{}`", analysis.operator);
    let _ = writeln!(md, "\n- chip: `{}` at {:.2} GHz", chip.name(), chip.frequency_hz / 1e9);
    let _ = writeln!(
        md,
        "- total: {:.0} cycles = {:.3} µs",
        analysis.total_cycles,
        chip.cycles_to_micros(analysis.total_cycles)
    );
    let _ = writeln!(md, "- **diagnosis: {}**", analysis.bottleneck());
    let _ =
        writeln!(md, "- peak component utilization: {:.1}%", analysis.peak_utilization() * 100.0);

    let _ = writeln!(md, "\n## Components\n");
    let _ = writeln!(md, "| component | ideal/cy | actual/cy | U | E | R |");
    let _ = writeln!(md, "|---|---|---|---|---|---|");
    for m in analysis.metrics() {
        let _ = writeln!(
            md,
            "| {} | {:.2} | {:.2} | {:.1}% | {:.1}% | {:.1}% |",
            m.component,
            m.ideal_rate,
            m.actual_rate,
            m.utilization * 100.0,
            m.efficiency * 100.0,
            m.time_ratio * 100.0
        );
    }

    let _ = writeln!(md, "\n## Transfer breakdown (bytes per path)\n");
    let _ = writeln!(md, "| path | engine | bytes |");
    let _ = writeln!(md, "|---|---|---|");
    let mut paths: Vec<_> = profile.bytes.iter().collect();
    paths.sort_by_key(|(_, &b)| std::cmp::Reverse(b));
    for (path, bytes) in paths {
        let engine = path.mte().map_or_else(|| "direct".to_owned(), |e| e.to_string());
        let _ = writeln!(md, "| {path} | {engine} | {bytes} |");
    }

    let _ = writeln!(md, "\n## Compute breakdown (ops per precision)\n");
    let _ = writeln!(md, "| unit | precision | operations |");
    let _ = writeln!(md, "|---|---|---|");
    let mut ops: Vec<_> = profile.ops.iter().collect();
    ops.sort_by_key(|(_, &n)| std::cmp::Reverse(n));
    for (&(unit, precision), count) in ops {
        let _ = writeln!(md, "| {unit} | {precision} | {count} |");
    }

    let naive_points = naive::naive_points(profile, chip).len();
    let _ = writeln!(
        md,
        "\nThe naive roofline would draw {naive_points} points for this operator; \
         the component model draws {} after pruning.",
        RooflineChart::from_analysis(analysis).points().len()
    );

    let _ = writeln!(md, "\n## Roofline\n\n```text");
    let _ = write!(md, "{}", RooflineChart::from_analysis(analysis).to_ascii(84, 20));
    let _ = writeln!(md, "```");
    md
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, Thresholds};
    use ascend_arch::{Buffer, Component, ComputeUnit, Precision, TransferPath};
    use ascend_isa::{KernelBuilder, Region};
    use ascend_profile::Profiler;

    fn sample() -> (ChipSpec, Profile, RooflineAnalysis) {
        let chip = ChipSpec::training();
        let mut b = KernelBuilder::new("report_sample");
        let gm = Region::new(Buffer::Gm, 0, 32768);
        let ub = Region::new(Buffer::Ub, 0, 32768);
        b.transfer(TransferPath::GmToUb, gm, ub).unwrap();
        b.sync(Component::MteGm, Component::Vector);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 16384, vec![ub], vec![ub]);
        let (profile, _) = Profiler::new(chip.clone()).run(&b.build()).unwrap();
        let analysis = analyze(&profile, &chip, &Thresholds::default());
        (chip, profile, analysis)
    }

    #[test]
    fn report_contains_all_sections() {
        let (chip, profile, analysis) = sample();
        let md = to_markdown(&analysis, &profile, &chip);
        for needle in [
            "# Roofline report: `report_sample`",
            "## Components",
            "## Transfer breakdown",
            "## Compute breakdown",
            "## Roofline",
            "diagnosis:",
            "gm->ub",
            "fp16",
        ] {
            assert!(md.contains(needle), "missing `{needle}` in:\n{md}");
        }
    }

    #[test]
    fn report_tables_are_markdown_shaped() {
        let (chip, profile, analysis) = sample();
        let md = to_markdown(&analysis, &profile, &chip);
        // Every table row has matching pipes.
        for line in md.lines().filter(|l| l.starts_with('|')) {
            assert!(line.ends_with('|'), "unterminated row: {line}");
        }
    }
}
