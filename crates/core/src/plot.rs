//! Roofline chart construction and rendering (paper, Figure 6).
//!
//! The chart is log-log: the x-axis is arithmetic intensity (operations
//! per byte moved by the paired MTE), the y-axis is performance
//! (operations per cycle). Compute components contribute horizontal
//! *arithmetic ceilings* at their operator-aware ideal rate; MTEs
//! contribute diagonal *bandwidth ceilings* with their operator-aware
//! ideal bandwidth as slope. One performance point is drawn per surviving
//! (MTE, compute) pair — at most 7 after pruning.

use crate::{pruning, RooflineAnalysis};
use ascend_arch::Component;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Whether a ceiling is an arithmetic peak or a bandwidth slope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CeilingKind {
    /// Horizontal line: ideal operations per cycle.
    Arithmetic,
    /// Diagonal line: ideal bytes per cycle (slope in ops/cycle per
    /// ops/byte).
    Bandwidth,
}

/// One roofline ceiling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ceiling {
    /// The component whose ideal rate this ceiling shows.
    pub component: Component,
    /// Arithmetic or bandwidth.
    pub kind: CeilingKind,
    /// Ideal rate: ops/cycle (arithmetic) or bytes/cycle (bandwidth).
    pub rate: f64,
}

/// One performance point: a surviving (MTE, compute) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfPoint {
    /// The compute component of the pair.
    pub compute: Component,
    /// The memory component of the pair.
    pub memory: Component,
    /// Arithmetic intensity: compute ops / MTE bytes.
    pub intensity: f64,
    /// Achieved performance in ops/cycle.
    pub performance: f64,
    /// The pair's utilization: how close the point is to its nearest
    /// ceiling (max of the compute and memory utilizations).
    pub utilization: f64,
}

/// A renderable component-based roofline chart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflineChart {
    title: String,
    ceilings: Vec<Ceiling>,
    points: Vec<PerfPoint>,
}

impl RooflineChart {
    /// Builds the chart of an analysis: ceilings for every active
    /// component, one point per surviving pair with work on both sides.
    #[must_use]
    pub fn from_analysis(analysis: &RooflineAnalysis) -> Self {
        let mut ceilings = Vec::new();
        for m in analysis.metrics() {
            let kind = match m.component.as_unit() {
                Some(_) => CeilingKind::Arithmetic,
                None => CeilingKind::Bandwidth,
            };
            ceilings.push(Ceiling { component: m.component, kind, rate: m.ideal_rate });
        }
        let mut points = Vec::new();
        for pair in pruning::pruned_pairs() {
            let compute_component = Component::from_unit(pair.compute);
            let (Some(c), Some(m)) =
                (analysis.metrics_of(compute_component), analysis.metrics_of(pair.memory))
            else {
                continue;
            };
            points.push(PerfPoint {
                compute: compute_component,
                memory: pair.memory,
                intensity: c.work / m.work,
                performance: c.actual_rate,
                utilization: c.utilization.max(m.utilization),
            });
        }
        RooflineChart { title: analysis.operator.clone(), ceilings, points }
    }

    /// Chart title (the operator name).
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The ceilings of the chart.
    #[must_use]
    pub fn ceilings(&self) -> &[Ceiling] {
        &self.ceilings
    }

    /// The performance points of the chart (≤ 7).
    #[must_use]
    pub fn points(&self) -> &[PerfPoint] {
        &self.points
    }

    fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut x_min = f64::INFINITY;
        let mut x_max = f64::NEG_INFINITY;
        let mut y_min = f64::INFINITY;
        let mut y_max = f64::NEG_INFINITY;
        for p in &self.points {
            x_min = x_min.min(p.intensity);
            x_max = x_max.max(p.intensity);
            y_min = y_min.min(p.performance);
            y_max = y_max.max(p.performance);
        }
        for c in &self.ceilings {
            if c.kind == CeilingKind::Arithmetic {
                y_max = y_max.max(c.rate);
            }
        }
        if !x_min.is_finite() {
            (0.1, 10.0, 0.1, 10.0)
        } else {
            (x_min / 4.0, x_max * 4.0, y_min / 4.0, y_max * 2.0)
        }
    }

    /// Renders the chart as ASCII art (`width`×`height` characters).
    ///
    /// `*` marks performance points, `-` arithmetic ceilings, `/`
    /// bandwidth ceilings.
    #[must_use]
    pub fn to_ascii(&self, width: usize, height: usize) -> String {
        let (width, height) = (width.max(20), height.max(8));
        let (x_min, x_max, y_min, y_max) = self.bounds();
        let (lx_min, lx_max) = (x_min.log10(), x_max.log10());
        let (ly_min, ly_max) = (y_min.log10(), y_max.log10());
        let mut grid = vec![vec![' '; width]; height];
        let x_of =
            |col: usize| 10f64.powf(lx_min + (lx_max - lx_min) * col as f64 / (width - 1) as f64);
        let row_of = |y: f64| {
            let t = (y.log10() - ly_min) / (ly_max - ly_min);
            let r = ((1.0 - t) * (height - 1) as f64).round();
            if r.is_finite() {
                Some((r.max(0.0) as usize).min(height - 1))
            } else {
                None
            }
        };
        for ceiling in &self.ceilings {
            for (col, x) in (0..width).map(|c| (c, x_of(c))) {
                let (y, mark) = match ceiling.kind {
                    CeilingKind::Arithmetic => (ceiling.rate, '-'),
                    CeilingKind::Bandwidth => (ceiling.rate * x, '/'),
                };
                if y > y_max || y < y_min {
                    continue;
                }
                if let Some(row) = row_of(y) {
                    if grid[row][col] == ' ' {
                        grid[row][col] = mark;
                    }
                }
            }
        }
        for point in &self.points {
            let t = (point.intensity.log10() - lx_min) / (lx_max - lx_min);
            let col = ((t * (width - 1) as f64).round().max(0.0) as usize).min(width - 1);
            if let Some(row) = row_of(point.performance) {
                grid[row][col] = '*';
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} (log-log; - arithmetic, / bandwidth, * point)", self.title);
        for row in grid {
            let _ = writeln!(out, "|{}|", row.iter().collect::<String>());
        }
        let _ = writeln!(
            out,
            " x: {x_min:.3e} .. {x_max:.3e} ops/byte, y: {y_min:.3e} .. {y_max:.3e} ops/cycle"
        );
        out
    }

    /// Renders the chart as a standalone SVG document.
    #[must_use]
    pub fn to_svg(&self, width: u32, height: u32) -> String {
        let (w, h) = (f64::from(width.max(200)), f64::from(height.max(150)));
        let margin = 50.0;
        let (x_min, x_max, y_min, y_max) = self.bounds();
        let (lx_min, lx_max) = (x_min.log10(), x_max.log10());
        let (ly_min, ly_max) = (y_min.log10(), y_max.log10());
        let sx = |x: f64| margin + (x.log10() - lx_min) / (lx_max - lx_min) * (w - 2.0 * margin);
        let sy =
            |y: f64| h - margin - (y.log10() - ly_min) / (ly_max - ly_min) * (h - 2.0 * margin);
        let mut svg = String::new();
        let _ = write!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">"
        );
        let _ = write!(
            svg,
            "<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/><text x=\"{}\" y=\"20\" font-size=\"14\">{} — component-based roofline</text>",
            margin, self.title
        );
        for ceiling in &self.ceilings {
            let (x1, y1, x2, y2) = match ceiling.kind {
                CeilingKind::Arithmetic => (x_min, ceiling.rate, x_max, ceiling.rate),
                CeilingKind::Bandwidth => {
                    // Clip the diagonal to the chart's y-range.
                    let x_at = |y: f64| y / ceiling.rate;
                    let x1 = x_at(y_min).max(x_min);
                    let x2 = x_at(y_max).min(x_max);
                    (x1, ceiling.rate * x1, x2, ceiling.rate * x2)
                }
            };
            if x2 <= x1 || y1 <= 0.0 {
                continue;
            }
            let _ = write!(
                svg,
                "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#888\" stroke-width=\"1.5\"/><text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" fill=\"#555\">{}</text>",
                sx(x1), sy(y1.max(y_min)), sx(x2), sy(y2.min(y_max)),
                sx(x2) - 40.0, sy(y2.min(y_max)) - 4.0, ceiling.component
            );
        }
        for point in &self.points {
            let _ = write!(
                svg,
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\" fill=\"#c33\"/><text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\">{}+{} ({:.1}%)</text>",
                sx(point.intensity), sy(point.performance),
                sx(point.intensity) + 6.0, sy(point.performance) - 4.0,
                point.compute, point.memory, point.utilization * 100.0
            );
        }
        svg.push_str("</svg>");
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, Thresholds};
    use ascend_arch::{Buffer, ChipSpec, ComputeUnit, Precision, TransferPath};
    use ascend_isa::{KernelBuilder, Region};
    use ascend_profile::Profiler;

    fn analysis() -> RooflineAnalysis {
        let chip = ChipSpec::training();
        let mut b = KernelBuilder::new("add_relu_like");
        let gm = Region::new(Buffer::Gm, 0, 65536);
        let ub = Region::new(Buffer::Ub, 0, 65536);
        let out = Region::new(Buffer::Gm, 1 << 20, 65536);
        b.transfer(TransferPath::GmToUb, gm, ub).unwrap();
        b.sync(ascend_arch::Component::MteGm, ascend_arch::Component::Vector);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 32768, vec![ub], vec![ub]);
        b.compute(ComputeUnit::Scalar, Precision::Int32, 64, vec![], vec![]);
        b.sync(ascend_arch::Component::Vector, ascend_arch::Component::MteUb);
        b.transfer(TransferPath::UbToGm, ub, out).unwrap();
        let (p, _) = Profiler::new(chip.clone()).run(&b.build()).unwrap();
        analyze(&p, &chip, &Thresholds::default())
    }

    #[test]
    fn chart_has_points_for_surviving_pairs_only() {
        let chart = RooflineChart::from_analysis(&analysis());
        assert!(!chart.points().is_empty());
        assert!(chart.points().len() <= 7);
        // MTE-L1 did no work: no pair may reference it.
        assert!(chart.points().iter().all(|p| p.memory != Component::MteL1));
        // Scalar pairs exist with GM and UB engines.
        assert!(chart
            .points()
            .iter()
            .any(|p| p.compute == Component::Scalar && p.memory == Component::MteGm));
    }

    #[test]
    fn intensities_are_consistent_with_work() {
        let analysis = analysis();
        let chart = RooflineChart::from_analysis(&analysis);
        for point in chart.points() {
            let c = analysis.metrics_of(point.compute).unwrap();
            let m = analysis.metrics_of(point.memory).unwrap();
            assert!((point.intensity - c.work / m.work).abs() < 1e-12);
            assert!((point.performance - c.actual_rate).abs() < 1e-12);
        }
    }

    #[test]
    fn ascii_render_contains_points_and_ceilings() {
        let chart = RooflineChart::from_analysis(&analysis());
        let text = chart.to_ascii(72, 20);
        assert!(text.contains('*'), "no points drawn:\n{text}");
        assert!(text.contains('-') || text.contains('/'), "no ceilings drawn:\n{text}");
    }

    #[test]
    fn svg_render_is_well_formed_enough() {
        let chart = RooflineChart::from_analysis(&analysis());
        let svg = chart.to_svg(640, 480);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<line"));
    }

    #[test]
    fn empty_analysis_renders_without_panicking() {
        let chip = ChipSpec::training();
        let p = ascend_profile::Profile::empty("idle");
        let a = analyze(&p, &chip, &Thresholds::default());
        let chart = RooflineChart::from_analysis(&a);
        assert!(chart.points().is_empty());
        let _ = chart.to_ascii(60, 15);
        let _ = chart.to_svg(400, 300);
    }
}
