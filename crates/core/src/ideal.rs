//! Operator-aware ideal performance (paper, Definition 1 / Eq. 4).

use ascend_arch::{ChipSpec, ComputeUnit, MteEngine, TransferPath};
use ascend_profile::Profile;

/// Operator-aware ideal performance of a compute unit, in operations per
/// cycle: the weighted harmonic mean of the unit's precision peaks, with
/// the operator's per-precision operation counts as weights (Eq. 4).
///
/// Returns `None` when the operator executed no operations on `unit`, or
/// when a precision present in the profile is unsupported by the chip.
///
/// The harmonic mean is the right aggregate because each precision is a
/// task whose time is `O_prec / P_prec`: slow precisions weigh more, and
/// a 100%-INT8 operator's ideal equals the INT8 peak exactly.
///
/// # Examples
///
/// ```
/// use ascend_arch::{ChipSpec, ComputeUnit, Precision};
/// use ascend_profile::Profile;
/// use ascend_roofline::ideal_compute_rate;
///
/// let chip = ChipSpec::training();
/// let mut profile = Profile::empty("quantized_matmul");
/// // Equal op counts in FP16 and INT8 (the paper's Figure 3b example).
/// profile.ops.insert((ComputeUnit::Cube, Precision::Fp16), 1_000_000);
/// profile.ops.insert((ComputeUnit::Cube, Precision::Int8), 1_000_000);
/// let ideal = ideal_compute_rate(&chip, &profile, ComputeUnit::Cube).unwrap();
/// let int8 = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Int8).unwrap();
/// // Harmonic mean of P and 2P with equal weights = 4/3 P = 2/3 of INT8 peak.
/// assert!((ideal - int8 * 2.0 / 3.0).abs() < 1e-6);
/// ```
#[must_use]
pub fn ideal_compute_rate(chip: &ChipSpec, profile: &Profile, unit: ComputeUnit) -> Option<f64> {
    let mut total_ops = 0.0;
    let mut ideal_time = 0.0;
    for (&(u, precision), &ops) in &profile.ops {
        if u != unit || ops == 0 {
            continue;
        }
        let peak = chip.peak_ops_per_cycle(unit, precision).ok()?;
        total_ops += ops as f64;
        ideal_time += ops as f64 / peak;
    }
    if total_ops == 0.0 || ideal_time == 0.0 {
        return None;
    }
    Some(total_ops / ideal_time)
}

/// The *maximum* precision peak among those the operator used on `unit` —
/// the naive alternative the paper rejects (it assumes everything could
/// run at the fastest precision).
#[must_use]
pub fn max_compute_rate(chip: &ChipSpec, profile: &Profile, unit: ComputeUnit) -> Option<f64> {
    profile
        .ops
        .iter()
        .filter(|(&(u, _), &ops)| u == unit && ops > 0)
        .filter_map(|(&(_, p), _)| chip.peak_ops_per_cycle(unit, p).ok())
        .fold(None, |acc, peak| Some(acc.map_or(peak, |a: f64| a.max(peak))))
}

/// The unweighted *arithmetic mean* of the precision peaks the operator
/// used on `unit` — the second naive alternative the paper rejects (an
/// all-INT8 operator would appear to exceed 100% utilization).
#[must_use]
pub fn average_compute_rate(chip: &ChipSpec, profile: &Profile, unit: ComputeUnit) -> Option<f64> {
    let peaks: Vec<f64> = profile
        .ops
        .iter()
        .filter(|(&(u, _), &ops)| u == unit && ops > 0)
        .filter_map(|(&(_, p), _)| chip.peak_ops_per_cycle(unit, p).ok())
        .collect();
    if peaks.is_empty() {
        return None;
    }
    Some(peaks.iter().sum::<f64>() / peaks.len() as f64)
}

/// Operator-aware ideal bandwidth of an MTE engine, in bytes per cycle:
/// the weighted harmonic mean of the engine's path bandwidths, with the
/// operator's per-path byte counts as weights.
///
/// This is the transfer-side analogue of [`ideal_compute_rate`]: transfers
/// within one MTE run serially (Section 2.1), so the engine's ideal time
/// is the sum of per-path ideal times, and the Figure 3a example — a 2:1
/// byte split across `GM→L0A`/`GM→L0B` saturating the engine — comes out
/// at exactly 100% utilization instead of the naive 67%/33% split.
///
/// Returns `None` when the engine moved no bytes.
#[must_use]
pub fn ideal_mte_rate(chip: &ChipSpec, profile: &Profile, engine: MteEngine) -> Option<f64> {
    let mut total_bytes = 0.0;
    let mut ideal_time = 0.0;
    for path in TransferPath::paths_of(engine) {
        let bytes = profile.bytes_on_path(path);
        if bytes == 0 {
            continue;
        }
        let spec = chip.transfer(path).ok()?;
        total_bytes += bytes as f64;
        ideal_time += bytes as f64 / spec.bytes_per_cycle;
    }
    if total_bytes == 0.0 || ideal_time == 0.0 {
        return None;
    }
    Some(total_bytes / ideal_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_arch::Precision;

    fn chip() -> ChipSpec {
        ChipSpec::training()
    }

    fn cube_profile(fp16: u64, int8: u64) -> Profile {
        let mut p = Profile::empty("cube");
        if fp16 > 0 {
            p.ops.insert((ComputeUnit::Cube, Precision::Fp16), fp16);
        }
        if int8 > 0 {
            p.ops.insert((ComputeUnit::Cube, Precision::Int8), int8);
        }
        p
    }

    #[test]
    fn pure_precision_ideal_equals_that_peak() {
        let chip = chip();
        let fp16 = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Fp16).unwrap();
        let int8 = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Int8).unwrap();
        let p = cube_profile(1000, 0);
        assert!((ideal_compute_rate(&chip, &p, ComputeUnit::Cube).unwrap() - fp16).abs() < 1e-9);
        let p = cube_profile(0, 1000);
        assert!((ideal_compute_rate(&chip, &p, ComputeUnit::Cube).unwrap() - int8).abs() < 1e-9);
    }

    #[test]
    fn figure_3b_revisit_ideal_is_two_thirds_int8_peak() {
        // Equal operand counts in FP16 (peak P) and INT8 (peak 2P):
        // operator-aware ideal = 2/(1/P + 1/2P) ... per-op weighting gives
        // 2W / (W/P + W/2P) = 4P/3 = (2/3) * 2P.
        let chip = chip();
        let int8 = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Int8).unwrap();
        let p = cube_profile(1 << 20, 1 << 20);
        let ideal = ideal_compute_rate(&chip, &p, ComputeUnit::Cube).unwrap();
        assert!((ideal - int8 * 2.0 / 3.0).abs() < 1e-6);
        // The naive alternatives disagree, as the paper notes:
        let max = max_compute_rate(&chip, &p, ComputeUnit::Cube).unwrap();
        let avg = average_compute_rate(&chip, &p, ComputeUnit::Cube).unwrap();
        assert!((max - int8).abs() < 1e-9, "max = INT8 peak");
        assert!((avg - int8 * 0.75).abs() < 1e-9, "avg = 3/4 of INT8 peak");
    }

    #[test]
    fn ideal_lies_between_slowest_and_fastest_peak() {
        let chip = chip();
        for (fp16, int8) in [(1u64, 9u64), (5, 5), (1000, 1), (7, 3)] {
            let p = cube_profile(fp16 << 10, int8 << 10);
            let ideal = ideal_compute_rate(&chip, &p, ComputeUnit::Cube).unwrap();
            let lo = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Fp16).unwrap();
            let hi = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Int8).unwrap();
            assert!(ideal >= lo - 1e-9 && ideal <= hi + 1e-9);
        }
    }

    #[test]
    fn no_work_means_no_ideal() {
        let chip = chip();
        let p = Profile::empty("idle");
        assert_eq!(ideal_compute_rate(&chip, &p, ComputeUnit::Cube), None);
        assert_eq!(ideal_mte_rate(&chip, &p, MteEngine::Gm), None);
        assert_eq!(max_compute_rate(&chip, &p, ComputeUnit::Cube), None);
        assert_eq!(average_compute_rate(&chip, &p, ComputeUnit::Cube), None);
    }

    #[test]
    fn figure_3a_revisit_mte_ideal_is_byte_weighted() {
        // Matrix A (2/3 of bytes) via GM->L0A, matrix B (1/3) via GM->L0B.
        let chip = chip();
        let mut p = Profile::empty("matmul");
        p.bytes.insert(TransferPath::GmToL0A, 2 << 20);
        p.bytes.insert(TransferPath::GmToL0B, 1 << 20);
        let ideal = ideal_mte_rate(&chip, &p, MteEngine::Gm).unwrap();
        let bw_a = chip.transfer(TransferPath::GmToL0A).unwrap().bytes_per_cycle;
        let bw_b = chip.transfer(TransferPath::GmToL0B).unwrap().bytes_per_cycle;
        let expected = 3.0 / (2.0 / bw_a + 1.0 / bw_b);
        assert!((ideal - expected).abs() < 1e-9);
        assert!(ideal > bw_b && ideal < bw_a);
    }

    #[test]
    fn mte_ideal_ignores_other_engines_paths() {
        let chip = chip();
        let mut p = Profile::empty("mixed");
        p.bytes.insert(TransferPath::GmToUb, 1 << 20);
        p.bytes.insert(TransferPath::UbToGm, 1 << 20);
        let gm = ideal_mte_rate(&chip, &p, MteEngine::Gm).unwrap();
        let ub = ideal_mte_rate(&chip, &p, MteEngine::Ub).unwrap();
        assert!((gm - chip.transfer(TransferPath::GmToUb).unwrap().bytes_per_cycle).abs() < 1e-9);
        assert!((ub - chip.transfer(TransferPath::UbToGm).unwrap().bytes_per_cycle).abs() < 1e-9);
        assert_eq!(ideal_mte_rate(&chip, &p, MteEngine::L1), None);
    }
}
