//! Bottleneck classification (paper, Sections 4.1–4.2).

use crate::ComponentMetrics;
use ascend_arch::{ChipSpec, Component, ComputeUnit};
use ascend_profile::Profile;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fmt::Write as _;

/// Classification thresholds.
///
/// A component whose utilization reaches its *bound threshold* is declared
/// the bottleneck. The thresholds are per-component because achievable
/// utilization differs by unit: "vector operations often run on smaller
/// data blocks with frequent transfer requirements, which limits their
/// utilization" (Section 5.1) — the Vector unit and its write-out engine
/// MTE-UB therefore use lower practical ceilings than the Cube and the
/// bulk-read engines.
///
/// `parallelism_ratio` is `R_threshold` from Section 4.2: if every
/// component's active-time ratio stays below it, the operator suffers
/// *insufficient parallelism*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Bound thresholds indexed by [`Component::index`].
    pub bound: [f64; 6],
    /// `R_threshold`: minimum time ratio that counts as "fully parallel".
    pub parallelism_ratio: f64,
}

impl Thresholds {
    /// The thresholds used throughout the reproduction.
    #[must_use]
    pub const fn paper_defaults() -> Self {
        let mut bound = [0.0; 6];
        bound[Component::Scalar.index()] = 0.55;
        bound[Component::Vector.index()] = 0.55;
        bound[Component::Cube.index()] = 0.80;
        bound[Component::MteGm.index()] = 0.80;
        bound[Component::MteL1.index()] = 0.80;
        bound[Component::MteUb.index()] = 0.65;
        Thresholds { bound, parallelism_ratio: 0.80 }
    }

    /// The bound threshold of `component`.
    #[must_use]
    pub fn bound_for(&self, component: Component) -> f64 {
        self.bound[component.index()]
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds::paper_defaults()
    }
}

/// The diagnosed cause of an operator's performance (Sections 4.1–4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bottleneck {
    /// A compute unit's utilization reached its bound threshold.
    ComputeBound(ComputeUnit),
    /// An MTE's utilization reached its bound threshold.
    MteBound(Component),
    /// All components underutilized and no time ratio is high: the queues
    /// barely overlap.
    InsufficientParallelism,
    /// A memory component is busy most of the time but transfers
    /// inefficiently (e.g. too-small granularity).
    InefficientMte(Component),
    /// A compute unit is busy most of the time but executes inefficiently
    /// (e.g. bad `repeat`/`mask` parameters).
    InefficientCompute(ComputeUnit),
    /// The operator did no measurable work.
    Idle,
}

impl Bottleneck {
    /// Short label used in the paper's figures: CB, MB, IP, IM, IC.
    #[must_use]
    pub const fn label(&self) -> &'static str {
        match self {
            Bottleneck::ComputeBound(_) => "CB",
            Bottleneck::MteBound(_) => "MB",
            Bottleneck::InsufficientParallelism => "IP",
            Bottleneck::InefficientMte(_) => "IM",
            Bottleneck::InefficientCompute(_) => "IC",
            Bottleneck::Idle => "--",
        }
    }

    /// Whether the operator is *bound* (as opposed to underutilized).
    #[must_use]
    pub const fn is_bound(&self) -> bool {
        matches!(self, Bottleneck::ComputeBound(_) | Bottleneck::MteBound(_))
    }
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bottleneck::ComputeBound(unit) => write!(f, "compute bound ({unit})"),
            Bottleneck::MteBound(component) => write!(f, "MTE bound ({component})"),
            Bottleneck::InsufficientParallelism => write!(f, "insufficient parallelism"),
            Bottleneck::InefficientMte(component) => write!(f, "inefficient MTE ({component})"),
            Bottleneck::InefficientCompute(unit) => write!(f, "inefficient compute ({unit})"),
            Bottleneck::Idle => write!(f, "idle"),
        }
    }
}

/// The result of a component-based roofline analysis of one operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflineAnalysis {
    /// Name of the analyzed operator (from the profile).
    pub operator: String,
    metrics: Vec<ComponentMetrics>,
    bottleneck: Bottleneck,
    thresholds: Thresholds,
    /// Total operator cycles.
    pub total_cycles: f64,
}

impl RooflineAnalysis {
    /// Per-component metrics for every component that did work.
    #[must_use]
    pub fn metrics(&self) -> &[ComponentMetrics] {
        &self.metrics
    }

    /// The metrics of one component, if it did work.
    #[must_use]
    pub fn metrics_of(&self, component: Component) -> Option<&ComponentMetrics> {
        self.metrics.iter().find(|m| m.component == component)
    }

    /// The diagnosed bottleneck.
    #[must_use]
    pub fn bottleneck(&self) -> Bottleneck {
        self.bottleneck
    }

    /// The thresholds used.
    #[must_use]
    pub fn thresholds(&self) -> &Thresholds {
        &self.thresholds
    }

    /// The highest utilization over all components (the paper's headline
    /// `MTE_utilization` figure), or 0 for an idle operator.
    #[must_use]
    pub fn peak_utilization(&self) -> f64 {
        self.metrics.iter().map(|m| m.utilization).fold(0.0, f64::max)
    }

    /// The component with the largest active-time ratio, if any.
    #[must_use]
    pub fn busiest_component(&self) -> Option<&ComponentMetrics> {
        self.metrics.iter().max_by(|a, b| a.time_ratio.total_cmp(&b.time_ratio))
    }

    /// A human-readable multi-line summary (mirrors the walkthrough of
    /// Section 4.3).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "operator {}: {:.0} cycles — {}",
            self.operator, self.total_cycles, self.bottleneck
        );
        let _ = writeln!(
            out,
            "  {:<8} {:>12} {:>12} {:>8} {:>8} {:>8}",
            "component", "ideal/cy", "actual/cy", "U", "E", "R"
        );
        for m in &self.metrics {
            let _ = writeln!(
                out,
                "  {:<8} {:>12.2} {:>12.2} {:>7.2}% {:>7.2}% {:>7.2}%",
                m.component.name(),
                m.ideal_rate,
                m.actual_rate,
                m.utilization * 100.0,
                m.efficiency * 100.0,
                m.time_ratio * 100.0
            );
        }
        out
    }
}

/// Runs the component-based roofline analysis of Sections 4.1–4.2.
///
/// Classification order:
///
/// 1. **Bound**: some component's utilization `U` reaches its bound
///    threshold → [`Bottleneck::ComputeBound`] / [`Bottleneck::MteBound`]
///    for the highest-utilization such component.
/// 2. **Insufficient parallelism**: otherwise, if every component's time
///    ratio `R` is below `R_threshold`.
/// 3. **Inefficient component**: otherwise the component with the highest
///    `R` is busy but inefficient → [`Bottleneck::InefficientMte`] /
///    [`Bottleneck::InefficientCompute`].
#[must_use]
pub fn analyze(profile: &Profile, chip: &ChipSpec, thresholds: &Thresholds) -> RooflineAnalysis {
    let metrics: Vec<ComponentMetrics> = Component::ALL
        .into_iter()
        .filter_map(|c| ComponentMetrics::from_profile(profile, chip, c))
        .collect();

    let bottleneck = classify(&metrics, thresholds);
    RooflineAnalysis {
        operator: profile.name.clone(),
        metrics,
        bottleneck,
        thresholds: *thresholds,
        total_cycles: profile.total_cycles,
    }
}

fn classify(metrics: &[ComponentMetrics], thresholds: &Thresholds) -> Bottleneck {
    if metrics.is_empty() {
        return Bottleneck::Idle;
    }
    // 1. Bound components, ranked by how far past their own threshold
    // they are (so a 72%-utilized Vector outranks a 72%-utilized MTE-UB
    // whose practical ceiling is higher).
    let bound = metrics
        .iter()
        .filter(|m| m.utilization >= thresholds.bound_for(m.component))
        .max_by(|a, b| {
            let ma = a.utilization / thresholds.bound_for(a.component);
            let mb = b.utilization / thresholds.bound_for(b.component);
            ma.total_cmp(&mb)
        });
    if let Some(m) = bound {
        // A component is a compute unit exactly when `as_unit` answers;
        // anything else is a memory engine.
        return match m.component.as_unit() {
            Some(unit) => Bottleneck::ComputeBound(unit),
            None => Bottleneck::MteBound(m.component),
        };
    }
    // 2. Insufficient parallelism. (The emptiness check above makes the
    // max exist; an empty slice would simply classify as idle.)
    let Some(busiest) = metrics.iter().max_by(|a, b| a.time_ratio.total_cmp(&b.time_ratio)) else {
        return Bottleneck::Idle;
    };
    if busiest.time_ratio < thresholds.parallelism_ratio {
        return Bottleneck::InsufficientParallelism;
    }
    // 3. Inefficient component.
    match busiest.component.as_unit() {
        Some(unit) => Bottleneck::InefficientCompute(unit),
        None => Bottleneck::InefficientMte(busiest.component),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(component: Component, utilization: f64, time_ratio: f64) -> ComponentMetrics {
        let efficiency = if time_ratio > 0.0 { utilization / time_ratio } else { 0.0 };
        ComponentMetrics {
            component,
            work: 1.0,
            ideal_rate: 1.0,
            actual_rate: utilization,
            utilization,
            active_cycles: time_ratio,
            time_ratio,
            efficiency,
        }
    }

    fn thresholds() -> Thresholds {
        Thresholds::default()
    }

    #[test]
    fn empty_metrics_are_idle() {
        assert_eq!(classify(&[], &thresholds()), Bottleneck::Idle);
    }

    #[test]
    fn high_utilization_is_bound() {
        let metrics =
            vec![metric(Component::MteGm, 0.93, 0.95), metric(Component::Cube, 0.40, 0.45)];
        assert_eq!(classify(&metrics, &thresholds()), Bottleneck::MteBound(Component::MteGm));
    }

    #[test]
    fn compute_bound_names_the_unit() {
        let metrics = vec![metric(Component::Cube, 0.9, 0.95)];
        assert_eq!(classify(&metrics, &thresholds()), Bottleneck::ComputeBound(ComputeUnit::Cube));
    }

    #[test]
    fn mte_ub_uses_its_lower_threshold() {
        // 66% would not bind MTE-GM, but binds MTE-UB (Add_ReLU iter 2).
        let metrics = vec![metric(Component::MteUb, 0.6624, 0.8514)];
        assert_eq!(classify(&metrics, &thresholds()), Bottleneck::MteBound(Component::MteUb));
        let metrics = vec![metric(Component::MteGm, 0.6624, 0.8514)];
        assert_eq!(classify(&metrics, &thresholds()), Bottleneck::InefficientMte(Component::MteGm));
    }

    #[test]
    fn low_ratios_mean_insufficient_parallelism() {
        // Add_ReLU iteration 1: peak U 38.42%, max R 58.68% (MTE-GM).
        let metrics = vec![
            metric(Component::MteGm, 0.30, 0.5868),
            metric(Component::Vector, 0.3842, 0.40),
            metric(Component::MteUb, 0.3842, 0.45),
        ];
        assert_eq!(classify(&metrics, &thresholds()), Bottleneck::InsufficientParallelism);
    }

    #[test]
    fn busy_inefficient_compute_is_flagged() {
        // AvgPool: utilization 13.54%, Vector R 83.98%.
        let metrics =
            vec![metric(Component::Vector, 0.1354, 0.8398), metric(Component::MteGm, 0.10, 0.30)];
        assert_eq!(
            classify(&metrics, &thresholds()),
            Bottleneck::InefficientCompute(ComputeUnit::Vector)
        );
    }

    #[test]
    fn busy_inefficient_mte_is_flagged() {
        // Depthwise iteration 2: MTE-GM R 94.18%, U 71.56%.
        let metrics =
            vec![metric(Component::MteGm, 0.7156, 0.9418), metric(Component::Cube, 0.30, 0.50)];
        assert_eq!(classify(&metrics, &thresholds()), Bottleneck::InefficientMte(Component::MteGm));
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(Bottleneck::ComputeBound(ComputeUnit::Cube).label(), "CB");
        assert_eq!(Bottleneck::MteBound(Component::MteGm).label(), "MB");
        assert_eq!(Bottleneck::InsufficientParallelism.label(), "IP");
        assert_eq!(Bottleneck::InefficientMte(Component::MteUb).label(), "IM");
        assert_eq!(Bottleneck::InefficientCompute(ComputeUnit::Vector).label(), "IC");
        assert!(Bottleneck::MteBound(Component::MteGm).is_bound());
        assert!(!Bottleneck::InsufficientParallelism.is_bound());
    }
}
