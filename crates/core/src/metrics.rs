//! Per-component utilization metrics and the E × R decomposition.

use crate::{ideal_compute_rate, ideal_mte_rate};
use ascend_arch::{ChipSpec, Component};
use ascend_profile::Profile;
use serde::{Deserialize, Serialize};

/// The roofline metrics of one component for one operator.
///
/// All rates are per-cycle (operations per cycle for compute components,
/// bytes per cycle for MTEs). The identity `U = E · R` (paper, Eq. 6)
/// holds by construction:
///
/// - `utilization  U = actual_rate / ideal_rate`
/// - `efficiency   E = work / (active_cycles · ideal_rate)`
/// - `time_ratio   R = active_cycles / total_cycles`
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentMetrics {
    /// The component measured.
    pub component: Component,
    /// Work done: operations (compute) or bytes (MTE).
    pub work: f64,
    /// Operator-aware ideal rate (Eq. 4), per cycle.
    pub ideal_rate: f64,
    /// Achieved rate over the whole operator time (Eq. 1), per cycle.
    pub actual_rate: f64,
    /// Utilization `U` (Eq. 5).
    pub utilization: f64,
    /// Active (executing) cycles of the component.
    pub active_cycles: f64,
    /// Time ratio `R` (Eq. 6).
    pub time_ratio: f64,
    /// Execution efficiency `E` (Eq. 6).
    pub efficiency: f64,
}

impl ComponentMetrics {
    /// Computes the metrics of `component` from an operator profile, or
    /// `None` when the component did no work.
    #[must_use]
    pub fn from_profile(profile: &Profile, chip: &ChipSpec, component: Component) -> Option<Self> {
        let total = profile.total_cycles;
        if total <= 0.0 {
            return None;
        }
        // Dispatch on the accessors directly: a component is a compute
        // unit or a memory engine, and nothing else.
        let (work, ideal_rate) = if let Some(unit) = component.as_unit() {
            let work = profile.total_ops(unit) as f64;
            (work, ideal_compute_rate(chip, profile, unit)?)
        } else if let Some(engine) = component.as_mte() {
            let work = profile.bytes_of_component(component) as f64;
            (work, ideal_mte_rate(chip, profile, engine)?)
        } else {
            return None;
        };
        if work <= 0.0 {
            return None;
        }
        let active_cycles = profile.active_cycles(component);
        let actual_rate = work / total;
        let utilization = actual_rate / ideal_rate;
        let time_ratio = active_cycles / total;
        let efficiency =
            if active_cycles > 0.0 { work / (active_cycles * ideal_rate) } else { 0.0 };
        Some(ComponentMetrics {
            component,
            work,
            ideal_rate,
            actual_rate,
            utilization,
            active_cycles,
            time_ratio,
            efficiency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_arch::{Buffer, ComputeUnit, Precision, TransferPath};
    use ascend_isa::{KernelBuilder, Region};
    use ascend_profile::Profiler;

    fn profiled() -> (Profile, ChipSpec) {
        let chip = ChipSpec::training();
        let mut b = KernelBuilder::new("m");
        let gm = Region::new(Buffer::Gm, 0, 32768);
        let ub = Region::new(Buffer::Ub, 0, 32768);
        b.transfer(TransferPath::GmToUb, gm, ub).unwrap();
        b.sync(Component::MteGm, Component::Vector);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 16384, vec![ub], vec![ub]);
        let (p, _) = Profiler::new(chip.clone()).run(&b.build()).unwrap();
        (p, chip)
    }

    #[test]
    fn decomposition_identity_holds() {
        let (p, chip) = profiled();
        for component in [Component::MteGm, Component::Vector] {
            let m = ComponentMetrics::from_profile(&p, &chip, component).unwrap();
            assert!(
                (m.utilization - m.efficiency * m.time_ratio).abs() < 1e-9,
                "{component}: U={} E={} R={}",
                m.utilization,
                m.efficiency,
                m.time_ratio
            );
        }
    }

    #[test]
    fn idle_components_yield_none() {
        let (p, chip) = profiled();
        assert!(ComponentMetrics::from_profile(&p, &chip, Component::Cube).is_none());
        assert!(ComponentMetrics::from_profile(&p, &chip, Component::MteL1).is_none());
    }

    #[test]
    fn utilization_and_ratio_are_within_bounds() {
        let (p, chip) = profiled();
        for component in Component::ALL {
            if let Some(m) = ComponentMetrics::from_profile(&p, &chip, component) {
                assert!(m.utilization > 0.0 && m.utilization <= 1.0 + 1e-9);
                assert!(m.time_ratio > 0.0 && m.time_ratio <= 1.0 + 1e-9);
                assert!(m.efficiency > 0.0 && m.efficiency <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn empty_profile_yields_none() {
        let chip = ChipSpec::training();
        let p = Profile::empty("nothing");
        for component in Component::ALL {
            assert!(ComponentMetrics::from_profile(&p, &chip, component).is_none());
        }
    }
}
