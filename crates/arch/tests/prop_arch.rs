//! Property tests over the architectural model.

use ascend_arch::{ChipSpec, Component, ComputeUnit, MteEngine, TransferPath};
use proptest::prelude::*;

fn any_path() -> impl Strategy<Value = TransferPath> {
    prop::sample::select(TransferPath::ALL.to_vec())
}

proptest! {
    #[test]
    fn transfer_cycles_are_monotone_and_positive(
        path in any_path(), a in 0u64..1_000_000, b in 0u64..1_000_000,
    ) {
        let chip = ChipSpec::training();
        let spec = chip.transfer(path).unwrap();
        prop_assert!(spec.cycles(a) > 0.0);
        if a <= b {
            prop_assert!(spec.cycles(a) <= spec.cycles(b));
        }
    }

    #[test]
    fn efficiency_is_a_fraction_and_monotone(path in any_path(), kib in 1u64..4096) {
        let chip = ChipSpec::training();
        let spec = chip.transfer(path).unwrap();
        let e1 = spec.efficiency(kib * 1024);
        let e2 = spec.efficiency(kib * 2048);
        prop_assert!((0.0..=1.0).contains(&e1));
        prop_assert!(e2 >= e1, "efficiency must grow with granularity");
    }

    #[test]
    fn bandwidth_scaling_scales_cycles_inversely(factor in 1.1f64..8.0, kib in 8u64..512) {
        let base = ChipSpec::training();
        let scaled = base.clone().with_mte_bandwidth_scale(MteEngine::Gm, factor);
        let bytes = kib * 1024;
        let t0 = base.transfer(TransferPath::GmToUb).unwrap().cycles(bytes);
        let t1 = scaled.transfer(TransferPath::GmToUb).unwrap().cycles(bytes);
        // Latency is unscaled, so the gain is bounded by the factor.
        prop_assert!(t1 < t0);
        prop_assert!(t0 / t1 <= factor + 1e-9);
    }

    #[test]
    fn every_mte_path_maps_back_to_its_component(path in any_path()) {
        if let Some(engine) = path.mte() {
            prop_assert_eq!(path.component(), Component::from_mte(engine));
            prop_assert_eq!(path.src(), engine.source_buffer());
        } else {
            prop_assert!(path.component().as_unit().is_some());
        }
    }

    #[test]
    fn peak_rates_are_positive_for_supported_precisions(
        unit in prop::sample::select(ComputeUnit::ALL.to_vec()),
    ) {
        for chip in [ChipSpec::training(), ChipSpec::inference()] {
            for &p in unit.precisions() {
                prop_assert!(chip.peak_ops_per_cycle(unit, p).unwrap() > 0.0);
            }
        }
    }
}
