//! Error type for architectural queries.

use crate::{Buffer, ComputeUnit, Precision, TransferPath};
use std::error::Error;
use std::fmt;

/// Errors returned by [`ChipSpec`](crate::ChipSpec) queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// The compute unit does not support the requested precision.
    UnsupportedPrecision {
        /// The unit queried.
        unit: ComputeUnit,
        /// The precision that is not available on `unit`.
        precision: Precision,
    },
    /// The chip specification has no entry for the transfer path.
    UnknownPath {
        /// The path queried.
        path: TransferPath,
    },
    /// The chip specification has no capacity entry for the buffer.
    UnknownBuffer {
        /// The buffer queried.
        buffer: Buffer,
    },
    /// The chip specification violates a construction-time invariant
    /// (zero/negative/non-finite rate, empty table, ...). Simulating with
    /// such a spec would produce NaN or infinite cycle counts.
    InvalidSpec {
        /// Name of the offending chip spec.
        chip: String,
        /// Which invariant is violated.
        detail: String,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::UnsupportedPrecision { unit, precision } => {
                write!(f, "compute unit {unit} does not support precision {precision}")
            }
            ArchError::UnknownPath { path } => {
                write!(f, "chip specification has no entry for transfer path {path}")
            }
            ArchError::UnknownBuffer { buffer } => {
                write!(f, "chip specification has no capacity entry for buffer {buffer}")
            }
            ArchError::InvalidSpec { chip, detail } => {
                write!(f, "chip specification {chip} is invalid: {detail}")
            }
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let err =
            ArchError::UnsupportedPrecision { unit: ComputeUnit::Cube, precision: Precision::Fp64 };
        let msg = err.to_string();
        assert!(msg.starts_with("compute unit"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn display_snapshots_stay_stable() {
        // Exact message snapshots: the deadlock forensics and the bench
        // binaries print these verbatim, so changes must be deliberate.
        let cases = [
            (
                ArchError::UnsupportedPrecision {
                    unit: ComputeUnit::Cube,
                    precision: Precision::Fp64,
                },
                "compute unit cube does not support precision fp64",
            ),
            (
                ArchError::UnknownBuffer { buffer: crate::Buffer::Ub },
                "chip specification has no capacity entry for buffer ub",
            ),
            (
                ArchError::InvalidSpec { chip: "x".to_owned(), detail: "zero bandwidth".into() },
                "chip specification x is invalid: zero bandwidth",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
            assert!(std::error::Error::source(&err).is_none());
        }
    }
}
