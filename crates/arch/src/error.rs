//! Error type for architectural queries.

use crate::{Buffer, ComputeUnit, Precision, TransferPath};
use std::error::Error;
use std::fmt;

/// Errors returned by [`ChipSpec`](crate::ChipSpec) queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// The compute unit does not support the requested precision.
    UnsupportedPrecision {
        /// The unit queried.
        unit: ComputeUnit,
        /// The precision that is not available on `unit`.
        precision: Precision,
    },
    /// The chip specification has no entry for the transfer path.
    UnknownPath {
        /// The path queried.
        path: TransferPath,
    },
    /// The chip specification has no capacity entry for the buffer.
    UnknownBuffer {
        /// The buffer queried.
        buffer: Buffer,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::UnsupportedPrecision { unit, precision } => {
                write!(f, "compute unit {unit} does not support precision {precision}")
            }
            ArchError::UnknownPath { path } => {
                write!(f, "chip specification has no entry for transfer path {path}")
            }
            ArchError::UnknownBuffer { buffer } => {
                write!(f, "chip specification has no capacity entry for buffer {buffer}")
            }
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let err =
            ArchError::UnsupportedPrecision { unit: ComputeUnit::Cube, precision: Precision::Fp64 };
        let msg = err.to_string();
        assert!(msg.starts_with("compute unit"));
        assert!(!msg.ends_with('.'));
    }
}
