//! On-chip memory buffers and the memory hierarchy.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A level of the Ascend memory hierarchy (paper, Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemLevel {
    /// Global memory — off-core HBM/DDR.
    Global,
    /// The L1 level: the L1 Buffer (Cube side) and the Unified Buffer.
    L1,
    /// The L0 level: L0A/L0B/L0C feeding the Cube directly.
    L0,
}

/// One of the AICore's memory buffers.
///
/// Unlike a GPU's cache hierarchy, these buffers are explicitly managed by
/// the kernel author: the L1 Buffer stages Cube inputs, the Unified Buffer
/// (UB) is shared scratch for Vector/Scalar, and L0A/L0B/L0C hold the two
/// inputs and the output of a Cube matrix multiply.
///
/// # Examples
///
/// ```
/// use ascend_arch::{Buffer, MemLevel};
/// assert_eq!(Buffer::L0A.level(), MemLevel::L0);
/// assert!(Buffer::Gm.is_global());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Buffer {
    /// Global memory.
    Gm,
    /// L1 Buffer (stages Cube inputs).
    L1,
    /// Unified Buffer (Vector/Scalar scratch).
    Ub,
    /// L0A Buffer (left matrix input of the Cube).
    L0A,
    /// L0B Buffer (right matrix input of the Cube).
    L0B,
    /// L0C Buffer (Cube output accumulator).
    L0C,
}

impl Buffer {
    /// All buffers.
    pub const ALL: [Buffer; 6] =
        [Buffer::Gm, Buffer::L1, Buffer::Ub, Buffer::L0A, Buffer::L0B, Buffer::L0C];

    /// The hierarchy level this buffer belongs to.
    #[must_use]
    pub const fn level(self) -> MemLevel {
        match self {
            Buffer::Gm => MemLevel::Global,
            Buffer::L1 | Buffer::Ub => MemLevel::L1,
            Buffer::L0A | Buffer::L0B | Buffer::L0C => MemLevel::L0,
        }
    }

    /// Whether this is global memory (practically unbounded for kernels).
    #[must_use]
    pub const fn is_global(self) -> bool {
        matches!(self, Buffer::Gm)
    }

    /// Short lowercase name, e.g. `"l0a"`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Buffer::Gm => "gm",
            Buffer::L1 => "l1",
            Buffer::Ub => "ub",
            Buffer::L0A => "l0a",
            Buffer::L0B => "l0b",
            Buffer::L0C => "l0c",
        }
    }
}

impl fmt::Display for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_assignment_matches_figure_1() {
        assert_eq!(Buffer::Gm.level(), MemLevel::Global);
        assert_eq!(Buffer::L1.level(), MemLevel::L1);
        assert_eq!(Buffer::Ub.level(), MemLevel::L1);
        for b in [Buffer::L0A, Buffer::L0B, Buffer::L0C] {
            assert_eq!(b.level(), MemLevel::L0);
        }
    }

    #[test]
    fn only_gm_is_global() {
        let globals: Vec<Buffer> = Buffer::ALL.into_iter().filter(|b| b.is_global()).collect();
        assert_eq!(globals, vec![Buffer::Gm]);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Buffer::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Buffer::ALL.len());
    }
}
