//! Data-transfer paths between buffers and the memory transfer engines.

use crate::{Buffer, Component, ComputeUnit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the three Memory Transfer Engines (paper, Section 2.1).
///
/// Transfers controlled by the same MTE execute *serially*; transfers on
/// different MTEs run in parallel. Each MTE owns the outbound transfers of
/// one buffer: MTE-GM moves data out of global memory, MTE-L1 out of the
/// L1 Buffer, and MTE-UB out of the Unified Buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MteEngine {
    /// Controls `GM -> {L1, L0A, L0B, UB}`.
    Gm,
    /// Controls `L1 -> {L0A, L0B, UB}`.
    L1,
    /// Controls `UB -> {GM, L1}`.
    Ub,
}

impl MteEngine {
    /// All MTE engines.
    pub const ALL: [MteEngine; 3] = [MteEngine::Gm, MteEngine::L1, MteEngine::Ub];

    /// The buffer whose outbound transfers this engine schedules.
    #[must_use]
    pub const fn source_buffer(self) -> Buffer {
        match self {
            MteEngine::Gm => Buffer::Gm,
            MteEngine::L1 => Buffer::L1,
            MteEngine::Ub => Buffer::Ub,
        }
    }

    /// The [`Component`] this engine corresponds to.
    #[must_use]
    pub const fn component(self) -> Component {
        match self {
            MteEngine::Gm => Component::MteGm,
            MteEngine::L1 => Component::MteL1,
            MteEngine::Ub => Component::MteUb,
        }
    }

    /// Short lowercase name, e.g. `"mte-gm"`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            MteEngine::Gm => "mte-gm",
            MteEngine::L1 => "mte-l1",
            MteEngine::Ub => "mte-ub",
        }
    }
}

impl fmt::Display for MteEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a transfer path is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferClass {
    /// Scheduled by an MTE engine; contends with sibling transfers.
    Mte(MteEngine),
    /// A fixed-function path directly feeding or draining a compute unit
    /// (e.g. `L0A -> Cube`). These are inevitable and pruned from the
    /// roofline analysis (paper, Section 4.3).
    Direct(ComputeUnit),
}

/// A directed data-transfer path between two locations of the AICore.
///
/// The paper counts 20 transfers on the chip of Figure 1: nine scheduled by
/// the three MTE engines, plus eleven fixed-function paths that connect the
/// L0 buffers and the UB to the compute units.
///
/// # Examples
///
/// ```
/// use ascend_arch::{MteEngine, TransferClass, TransferPath};
/// assert_eq!(TransferPath::ALL.len(), 20);
/// assert_eq!(TransferPath::mte_paths().count(), 9);
/// assert_eq!(
///     TransferPath::GmToL1.class(),
///     TransferClass::Mte(MteEngine::Gm)
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TransferPath {
    // --- MTE-GM ---------------------------------------------------------
    /// `GM -> L1` (staging Cube inputs).
    GmToL1,
    /// `GM -> L0A` (cross-layer: bypasses L1 for the left matrix).
    GmToL0A,
    /// `GM -> L0B` (cross-layer: bypasses L1 for the right matrix).
    GmToL0B,
    /// `GM -> UB` (feeding Vector/Scalar data).
    GmToUb,
    // --- MTE-L1 ---------------------------------------------------------
    /// `L1 -> L0A` (high-bandwidth left-matrix feed).
    L1ToL0A,
    /// `L1 -> L0B` (lower-bandwidth right-matrix feed).
    L1ToL0B,
    /// `L1 -> UB`.
    L1ToUb,
    // --- MTE-UB ---------------------------------------------------------
    /// `UB -> GM` (writing results out).
    UbToGm,
    /// `UB -> L1`.
    UbToL1,
    // --- direct, fixed-function paths ------------------------------------
    /// `L0A -> Cube` input port.
    L0AToCube,
    /// `L0B -> Cube` input port.
    L0BToCube,
    /// `Cube -> L0C` accumulator write.
    CubeToL0C,
    /// `L0C -> Vector` (e.g. fused activation after MatMul).
    L0CToVector,
    /// `Vector -> L0C`.
    VectorToL0C,
    /// `UB -> Vector` operand read.
    UbToVector,
    /// `Vector -> UB` result write.
    VectorToUb,
    /// `UB -> Scalar` operand read.
    UbToScalar,
    /// `Scalar -> UB` result write.
    ScalarToUb,
    /// `L0C -> UB` drain implemented through the Vector unit.
    L0CToUb,
    /// `UB -> L0C` fill implemented through the Vector unit.
    UbToL0C,
}

impl TransferPath {
    /// All 20 transfer paths of the modelled chip.
    pub const ALL: [TransferPath; 20] = [
        TransferPath::GmToL1,
        TransferPath::GmToL0A,
        TransferPath::GmToL0B,
        TransferPath::GmToUb,
        TransferPath::L1ToL0A,
        TransferPath::L1ToL0B,
        TransferPath::L1ToUb,
        TransferPath::UbToGm,
        TransferPath::UbToL1,
        TransferPath::L0AToCube,
        TransferPath::L0BToCube,
        TransferPath::CubeToL0C,
        TransferPath::L0CToVector,
        TransferPath::VectorToL0C,
        TransferPath::UbToVector,
        TransferPath::VectorToUb,
        TransferPath::UbToScalar,
        TransferPath::ScalarToUb,
        TransferPath::L0CToUb,
        TransferPath::UbToL0C,
    ];

    /// The source buffer of the transfer (compute-unit endpoints map to the
    /// buffer they read from or write to).
    #[must_use]
    pub const fn src(self) -> Buffer {
        match self {
            TransferPath::GmToL1
            | TransferPath::GmToL0A
            | TransferPath::GmToL0B
            | TransferPath::GmToUb => Buffer::Gm,
            TransferPath::L1ToL0A | TransferPath::L1ToL0B | TransferPath::L1ToUb => Buffer::L1,
            TransferPath::UbToGm
            | TransferPath::UbToL1
            | TransferPath::UbToVector
            | TransferPath::UbToScalar
            | TransferPath::UbToL0C => Buffer::Ub,
            TransferPath::L0AToCube => Buffer::L0A,
            TransferPath::L0BToCube => Buffer::L0B,
            TransferPath::CubeToL0C => Buffer::L0C,
            TransferPath::L0CToVector | TransferPath::L0CToUb => Buffer::L0C,
            TransferPath::VectorToL0C | TransferPath::VectorToUb | TransferPath::ScalarToUb => {
                Buffer::Ub
            }
        }
    }

    /// The destination buffer of the transfer.
    #[must_use]
    pub const fn dst(self) -> Buffer {
        match self {
            TransferPath::GmToL1 | TransferPath::UbToL1 => Buffer::L1,
            TransferPath::GmToL0A | TransferPath::L1ToL0A => Buffer::L0A,
            TransferPath::GmToL0B | TransferPath::L1ToL0B => Buffer::L0B,
            TransferPath::GmToUb
            | TransferPath::L1ToUb
            | TransferPath::VectorToUb
            | TransferPath::ScalarToUb
            | TransferPath::L0CToUb => Buffer::Ub,
            TransferPath::UbToGm => Buffer::Gm,
            TransferPath::L0AToCube | TransferPath::L0BToCube => Buffer::L0C,
            TransferPath::CubeToL0C | TransferPath::VectorToL0C | TransferPath::UbToL0C => {
                Buffer::L0C
            }
            TransferPath::L0CToVector | TransferPath::UbToVector | TransferPath::UbToScalar => {
                Buffer::Ub
            }
        }
    }

    /// How this path is scheduled: by an MTE engine, or as a fixed-function
    /// port of a compute unit.
    #[must_use]
    pub const fn class(self) -> TransferClass {
        match self {
            TransferPath::GmToL1
            | TransferPath::GmToL0A
            | TransferPath::GmToL0B
            | TransferPath::GmToUb => TransferClass::Mte(MteEngine::Gm),
            TransferPath::L1ToL0A | TransferPath::L1ToL0B | TransferPath::L1ToUb => {
                TransferClass::Mte(MteEngine::L1)
            }
            TransferPath::UbToGm | TransferPath::UbToL1 => TransferClass::Mte(MteEngine::Ub),
            TransferPath::L0AToCube | TransferPath::L0BToCube | TransferPath::CubeToL0C => {
                TransferClass::Direct(ComputeUnit::Cube)
            }
            TransferPath::L0CToVector
            | TransferPath::VectorToL0C
            | TransferPath::UbToVector
            | TransferPath::VectorToUb
            | TransferPath::L0CToUb
            | TransferPath::UbToL0C => TransferClass::Direct(ComputeUnit::Vector),
            TransferPath::UbToScalar | TransferPath::ScalarToUb => {
                TransferClass::Direct(ComputeUnit::Scalar)
            }
        }
    }

    /// The MTE engine scheduling this path, if any.
    #[must_use]
    pub const fn mte(self) -> Option<MteEngine> {
        match self.class() {
            TransferClass::Mte(engine) => Some(engine),
            TransferClass::Direct(_) => None,
        }
    }

    /// The [`Component`] whose instruction queue executes this transfer.
    ///
    /// MTE paths execute on their engine's queue; direct paths are folded
    /// into the attached compute unit.
    #[must_use]
    pub const fn component(self) -> Component {
        match self.class() {
            TransferClass::Mte(engine) => engine.component(),
            TransferClass::Direct(unit) => Component::from_unit(unit),
        }
    }

    /// Iterator over the nine MTE-scheduled paths.
    pub fn mte_paths() -> impl Iterator<Item = TransferPath> {
        TransferPath::ALL.into_iter().filter(|p| p.mte().is_some())
    }

    /// Iterator over the MTE paths of one engine.
    pub fn paths_of(engine: MteEngine) -> impl Iterator<Item = TransferPath> {
        TransferPath::ALL.into_iter().filter(move |p| p.mte() == Some(engine))
    }

    /// Short lowercase name, e.g. `"gm->l1"`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            TransferPath::GmToL1 => "gm->l1",
            TransferPath::GmToL0A => "gm->l0a",
            TransferPath::GmToL0B => "gm->l0b",
            TransferPath::GmToUb => "gm->ub",
            TransferPath::L1ToL0A => "l1->l0a",
            TransferPath::L1ToL0B => "l1->l0b",
            TransferPath::L1ToUb => "l1->ub",
            TransferPath::UbToGm => "ub->gm",
            TransferPath::UbToL1 => "ub->l1",
            TransferPath::L0AToCube => "l0a->cube",
            TransferPath::L0BToCube => "l0b->cube",
            TransferPath::CubeToL0C => "cube->l0c",
            TransferPath::L0CToVector => "l0c->vector",
            TransferPath::VectorToL0C => "vector->l0c",
            TransferPath::UbToVector => "ub->vector",
            TransferPath::VectorToUb => "vector->ub",
            TransferPath::UbToScalar => "ub->scalar",
            TransferPath::ScalarToUb => "scalar->ub",
            TransferPath::L0CToUb => "l0c->ub",
            TransferPath::UbToL0C => "ub->l0c",
        }
    }
}

impl fmt::Display for TransferPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_paths_total() {
        assert_eq!(TransferPath::ALL.len(), 20);
    }

    #[test]
    fn nine_mte_paths_split_4_3_2() {
        assert_eq!(TransferPath::paths_of(MteEngine::Gm).count(), 4);
        assert_eq!(TransferPath::paths_of(MteEngine::L1).count(), 3);
        assert_eq!(TransferPath::paths_of(MteEngine::Ub).count(), 2);
        assert_eq!(TransferPath::mte_paths().count(), 9);
    }

    #[test]
    fn mte_paths_originate_from_engine_source_buffer() {
        for engine in MteEngine::ALL {
            for path in TransferPath::paths_of(engine) {
                assert_eq!(
                    path.src(),
                    engine.source_buffer(),
                    "{path} must read from {engine}'s source buffer"
                );
            }
        }
    }

    #[test]
    fn direct_paths_are_eleven() {
        let direct = TransferPath::ALL.into_iter().filter(|p| p.mte().is_none()).count();
        assert_eq!(direct, 11);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = TransferPath::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TransferPath::ALL.len());
    }

    #[test]
    fn cross_layer_paths_exist() {
        // Section 2.1: data can bypass L1 and go straight into L0A/L0B.
        assert_eq!(TransferPath::GmToL0A.mte(), Some(MteEngine::Gm));
        assert_eq!(TransferPath::GmToL0B.mte(), Some(MteEngine::Gm));
    }
}
