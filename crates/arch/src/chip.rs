//! Concrete chip specifications: peak rates, latencies, capacities.

use crate::{ArchError, Buffer, ComputeUnit, Precision, TransferPath};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which product line a [`ChipSpec`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChipKind {
    /// The training chip (higher compute and bandwidth; the paper's
    /// Atlas 300T-class part).
    Training,
    /// The inference chip (lower compute capacity; Atlas 300I-class).
    Inference,
}

impl fmt::Display for ChipKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipKind::Training => f.write_str("training"),
            ChipKind::Inference => f.write_str("inference"),
        }
    }
}

/// Peak arithmetic throughput of one precision on one compute unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputePeak {
    /// The unit.
    pub unit: ComputeUnit,
    /// The precision.
    pub precision: Precision,
    /// Peak operations per cycle at this precision.
    pub ops_per_cycle: f64,
}

/// Timing model of one transfer path.
///
/// The effective time of a transfer of `b` bytes is
/// `latency_cycles + (b + overhead_bytes) / bytes_per_cycle`, i.e. the
/// path behaves as if every transfer carried `overhead_bytes` of dead
/// payload. Small transfers therefore waste bandwidth — the root cause the
/// paper's *Increasing Transfer Granularity* optimization addresses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferSpec {
    /// The path this spec describes.
    pub path: TransferPath,
    /// Peak bandwidth in bytes per cycle.
    pub bytes_per_cycle: f64,
    /// Fixed start-up latency in cycles.
    pub latency_cycles: f64,
    /// Equivalent dead payload per transfer; at `b == overhead_bytes` the
    /// path reaches 50% of peak bandwidth.
    pub overhead_bytes: f64,
}

impl TransferSpec {
    /// Cycles to move `bytes` over this path.
    #[must_use]
    pub fn cycles(&self, bytes: u64) -> f64 {
        self.latency_cycles + (bytes as f64 + self.overhead_bytes) / self.bytes_per_cycle
    }

    /// Achieved fraction of peak bandwidth for a transfer of `bytes`.
    #[must_use]
    pub fn efficiency(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let b = bytes as f64;
        b / self.bytes_per_cycle / self.cycles(bytes)
    }
}

/// Per-buffer capacity in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferCapacity {
    /// The buffer.
    pub buffer: Buffer,
    /// Capacity in bytes (`u64::MAX` for global memory).
    pub bytes: u64,
}

/// A complete chip specification: everything the simulator and the roofline
/// model need to know about the hardware.
///
/// Two built-in specs model the paper's parts: [`ChipSpec::training`] and
/// [`ChipSpec::inference`]. All rates are per-AICore; the reproduction
/// simulates a single core (the paper's analysis is per-operator and
/// per-core as well).
///
/// # Examples
///
/// ```
/// use ascend_arch::{ChipSpec, TransferPath};
/// let chip = ChipSpec::training();
/// let spec = chip.transfer(TransferPath::L1ToL0A)?;
/// // The left-matrix feed is faster than the right-matrix feed (Section 2.1).
/// let l0b = chip.transfer(TransferPath::L1ToL0B)?;
/// assert!(spec.bytes_per_cycle > l0b.bytes_per_cycle);
/// # Ok::<(), ascend_arch::ArchError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    name: String,
    kind: ChipKind,
    /// Core clock in hertz.
    pub frequency_hz: f64,
    compute: Vec<ComputePeak>,
    transfers: Vec<TransferSpec>,
    capacities: Vec<BufferCapacity>,
    /// Cycles the in-order dispatcher spends per instruction before it
    /// reaches its component queue.
    pub dispatch_cycles: f64,
    /// Cycles to execute a `set_flag`/`wait_flag` instruction.
    pub flag_cycles: f64,
    /// Cycles a `pipe_barrier(ALL)` costs on top of draining the queues.
    pub barrier_cycles: f64,
    /// Fixed issue cost of every compute instruction, in cycles. A low
    /// `repeat` parameter multiplies this cost (the paper's AvgPool case).
    pub compute_issue_cycles: f64,
}

impl ChipSpec {
    /// The training chip model (1.5 GHz class).
    #[must_use]
    pub fn training() -> Self {
        ChipSpec {
            name: "ascend-training".to_owned(),
            kind: ChipKind::Training,
            frequency_hz: 1.5e9,
            compute: vec![
                ComputePeak {
                    unit: ComputeUnit::Cube,
                    precision: Precision::Int8,
                    ops_per_cycle: 16384.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Cube,
                    precision: Precision::Fp16,
                    ops_per_cycle: 8192.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Vector,
                    precision: Precision::Fp16,
                    ops_per_cycle: 256.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Vector,
                    precision: Precision::Fp32,
                    ops_per_cycle: 128.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Vector,
                    precision: Precision::Int32,
                    ops_per_cycle: 128.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Scalar,
                    precision: Precision::Int32,
                    ops_per_cycle: 4.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Scalar,
                    precision: Precision::Fp16,
                    ops_per_cycle: 2.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Scalar,
                    precision: Precision::Fp32,
                    ops_per_cycle: 2.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Scalar,
                    precision: Precision::Fp64,
                    ops_per_cycle: 1.0,
                },
            ],
            transfers: Self::transfer_table(1.0),
            capacities: Self::capacity_table(),
            dispatch_cycles: 8.0,
            flag_cycles: 4.0,
            barrier_cycles: 64.0,
            compute_issue_cycles: 32.0,
        }
    }

    /// The inference chip model (1.0 GHz class; roughly half the compute
    /// and bandwidth of the training part).
    #[must_use]
    pub fn inference() -> Self {
        ChipSpec {
            name: "ascend-inference".to_owned(),
            kind: ChipKind::Inference,
            frequency_hz: 1.0e9,
            compute: vec![
                ComputePeak {
                    unit: ComputeUnit::Cube,
                    precision: Precision::Int8,
                    ops_per_cycle: 8192.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Cube,
                    precision: Precision::Fp16,
                    ops_per_cycle: 4096.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Vector,
                    precision: Precision::Fp16,
                    ops_per_cycle: 128.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Vector,
                    precision: Precision::Fp32,
                    ops_per_cycle: 64.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Vector,
                    precision: Precision::Int32,
                    ops_per_cycle: 64.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Scalar,
                    precision: Precision::Int32,
                    ops_per_cycle: 4.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Scalar,
                    precision: Precision::Fp16,
                    ops_per_cycle: 2.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Scalar,
                    precision: Precision::Fp32,
                    ops_per_cycle: 2.0,
                },
                ComputePeak {
                    unit: ComputeUnit::Scalar,
                    precision: Precision::Fp64,
                    ops_per_cycle: 1.0,
                },
            ],
            transfers: Self::transfer_table(0.5),
            capacities: Self::capacity_table(),
            dispatch_cycles: 8.0,
            flag_cycles: 4.0,
            barrier_cycles: 64.0,
            compute_issue_cycles: 32.0,
        }
    }

    fn transfer_table(scale: f64) -> Vec<TransferSpec> {
        use TransferPath as P;
        // Bandwidth scales with the part; the per-transfer protocol
        // overhead (descriptor setup, alignment padding) does not.
        let spec = |path, bw: f64, lat: f64, ovh: f64| TransferSpec {
            path,
            bytes_per_cycle: bw * scale,
            latency_cycles: lat,
            overhead_bytes: ovh,
        };
        vec![
            // MTE-GM: global-memory reads share the GM port.
            spec(P::GmToL1, 64.0, 30.0, 2048.0),
            spec(P::GmToL0A, 48.0, 30.0, 2048.0),
            spec(P::GmToL0B, 32.0, 30.0, 2048.0),
            spec(P::GmToUb, 44.0, 30.0, 2048.0),
            // MTE-L1: asymmetric feeds (L0A twice the L0B bandwidth).
            spec(P::L1ToL0A, 128.0, 20.0, 2048.0),
            spec(P::L1ToL0B, 64.0, 20.0, 2048.0),
            spec(P::L1ToUb, 64.0, 20.0, 2048.0),
            // MTE-UB: write-out paths. GM writes are slower than reads and
            // markedly granularity-sensitive (the ITG optimization's target).
            spec(P::UbToGm, 48.0, 50.0, 6144.0),
            spec(P::UbToL1, 64.0, 20.0, 2048.0),
            // Direct fixed-function ports (pruned from analysis, but the
            // simulator still needs sane numbers if a kernel names them).
            spec(P::L0AToCube, 1024.0, 2.0, 128.0),
            spec(P::L0BToCube, 1024.0, 2.0, 128.0),
            spec(P::CubeToL0C, 1024.0, 2.0, 128.0),
            spec(P::L0CToVector, 512.0, 2.0, 128.0),
            spec(P::VectorToL0C, 512.0, 2.0, 128.0),
            spec(P::UbToVector, 512.0, 2.0, 128.0),
            spec(P::VectorToUb, 512.0, 2.0, 128.0),
            spec(P::UbToScalar, 64.0, 2.0, 64.0),
            spec(P::ScalarToUb, 64.0, 2.0, 64.0),
            spec(P::L0CToUb, 512.0, 2.0, 128.0),
            spec(P::UbToL0C, 512.0, 2.0, 128.0),
        ]
    }

    fn capacity_table() -> Vec<BufferCapacity> {
        vec![
            BufferCapacity { buffer: Buffer::Gm, bytes: u64::MAX / 2 },
            BufferCapacity { buffer: Buffer::L1, bytes: 1 << 20 },
            BufferCapacity { buffer: Buffer::Ub, bytes: 256 << 10 },
            BufferCapacity { buffer: Buffer::L0A, bytes: 64 << 10 },
            BufferCapacity { buffer: Buffer::L0B, bytes: 64 << 10 },
            BufferCapacity { buffer: Buffer::L0C, bytes: 256 << 10 },
        ]
    }

    /// Checks the construction-time invariants every consumer of a spec
    /// relies on: positive finite frequency and rates, non-negative finite
    /// latencies and overheads, non-empty peak/transfer/capacity tables,
    /// and non-zero buffer capacities. A spec that fails these would turn
    /// cycle arithmetic into NaN or infinity deep inside the simulator;
    /// [`Simulator`](https://docs.rs/ascend-sim) and the analysis pipeline
    /// reject it up front instead.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidSpec`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), ArchError> {
        let fail = |detail: String| Err(ArchError::InvalidSpec { chip: self.name.clone(), detail });
        let positive = |value: f64| value.is_finite() && value > 0.0;
        let non_negative = |value: f64| value.is_finite() && value >= 0.0;
        if !positive(self.frequency_hz) {
            return fail(format!(
                "frequency must be positive and finite, got {}",
                self.frequency_hz
            ));
        }
        for (value, what) in [
            (self.dispatch_cycles, "dispatch_cycles"),
            (self.flag_cycles, "flag_cycles"),
            (self.barrier_cycles, "barrier_cycles"),
            (self.compute_issue_cycles, "compute_issue_cycles"),
        ] {
            if !non_negative(value) {
                return fail(format!("{what} must be non-negative and finite, got {value}"));
            }
        }
        if self.compute.is_empty() {
            return fail("compute peak table is empty".to_owned());
        }
        for peak in &self.compute {
            if !positive(peak.ops_per_cycle) {
                return fail(format!(
                    "peak for {}/{} must be positive and finite, got {}",
                    peak.unit, peak.precision, peak.ops_per_cycle
                ));
            }
        }
        if self.transfers.is_empty() {
            return fail("transfer table is empty".to_owned());
        }
        for spec in &self.transfers {
            if !positive(spec.bytes_per_cycle) {
                return fail(format!(
                    "bandwidth of {} must be positive and finite, got {}",
                    spec.path, spec.bytes_per_cycle
                ));
            }
            if !non_negative(spec.latency_cycles) || !non_negative(spec.overhead_bytes) {
                return fail(format!(
                    "latency/overhead of {} must be non-negative and finite",
                    spec.path
                ));
            }
        }
        if self.capacities.is_empty() {
            return fail("capacity table is empty".to_owned());
        }
        for cap in &self.capacities {
            if cap.bytes == 0 {
                return fail(format!("capacity of {} must be non-zero", cap.buffer));
            }
        }
        Ok(())
    }

    /// The chip's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Training vs. inference part.
    #[must_use]
    pub fn kind(&self) -> ChipKind {
        self.kind
    }

    /// Peak operations per cycle of `precision` on `unit`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnsupportedPrecision`] when the unit cannot
    /// execute the precision.
    pub fn peak_ops_per_cycle(
        &self,
        unit: ComputeUnit,
        precision: Precision,
    ) -> Result<f64, ArchError> {
        self.compute
            .iter()
            .find(|c| c.unit == unit && c.precision == precision)
            .map(|c| c.ops_per_cycle)
            .ok_or(ArchError::UnsupportedPrecision { unit, precision })
    }

    /// Peak operations per *second* of `precision` on `unit`.
    ///
    /// # Errors
    ///
    /// Same as [`ChipSpec::peak_ops_per_cycle`].
    pub fn peak_ops_per_sec(
        &self,
        unit: ComputeUnit,
        precision: Precision,
    ) -> Result<f64, ArchError> {
        Ok(self.peak_ops_per_cycle(unit, precision)? * self.frequency_hz)
    }

    /// The timing model of a transfer path.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnknownPath`] when the path is absent from the
    /// spec (cannot happen for the built-in chips).
    pub fn transfer(&self, path: TransferPath) -> Result<&TransferSpec, ArchError> {
        self.transfers.iter().find(|t| t.path == path).ok_or(ArchError::UnknownPath { path })
    }

    /// Capacity of a buffer in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnknownBuffer`] when the buffer is absent from
    /// the spec (cannot happen for the built-in chips).
    pub fn capacity(&self, buffer: Buffer) -> Result<u64, ArchError> {
        self.capacities
            .iter()
            .find(|c| c.buffer == buffer)
            .map(|c| c.bytes)
            .ok_or(ArchError::UnknownBuffer { buffer })
    }

    /// All compute peaks (for building roofline ceilings).
    #[must_use]
    pub fn compute_peaks(&self) -> &[ComputePeak] {
        &self.compute
    }

    /// All transfer specs (for building roofline ceilings).
    #[must_use]
    pub fn transfer_specs(&self) -> &[TransferSpec] {
        &self.transfers
    }

    /// Returns a copy with every path of `engine` scaled by `factor` in
    /// bandwidth — the lever behind the paper's closing insight that LLM
    /// training "emphasizes the need of next-generation chips" with more
    /// GM bandwidth (Section 6.2.1).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    #[must_use]
    pub fn with_mte_bandwidth_scale(mut self, engine: crate::MteEngine, factor: f64) -> Self {
        assert!(factor > 0.0, "bandwidth scale must be positive");
        for spec in &mut self.transfers {
            if spec.path.mte() == Some(engine) {
                spec.bytes_per_cycle *= factor;
            }
        }
        self.name = format!("{}+{}x{factor:.2}", self.name, engine);
        self
    }

    /// Returns a copy with `unit`'s peak throughput scaled by `factor`
    /// across all precisions.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    #[must_use]
    pub fn with_compute_scale(mut self, unit: ComputeUnit, factor: f64) -> Self {
        assert!(factor > 0.0, "compute scale must be positive");
        for peak in &mut self.compute {
            if peak.unit == unit {
                peak.ops_per_cycle *= factor;
            }
        }
        self.name = format!("{}+{}x{factor:.2}", self.name, unit);
        self
    }

    /// Scales every path of `engine` by `factor` **without** the
    /// positivity check of [`ChipSpec::with_mte_bandwidth_scale`]. Fault
    /// injection uses this to model degraded or dead links (`factor` of
    /// `0.0` zeroes the bandwidth); the resulting spec fails
    /// [`ChipSpec::validate`], which is exactly how the dead-link error
    /// path is exercised.
    pub fn scale_bandwidth_unchecked(&mut self, engine: crate::MteEngine, factor: f64) {
        for spec in &mut self.transfers {
            if spec.path.mte() == Some(engine) {
                spec.bytes_per_cycle *= factor;
            }
        }
    }

    /// Returns a copy with a different core clock.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_hz` is not strictly positive.
    #[must_use]
    pub fn with_frequency(mut self, frequency_hz: f64) -> Self {
        assert!(frequency_hz > 0.0, "frequency must be positive");
        self.frequency_hz = frequency_hz;
        self
    }

    /// Convert a cycle count into seconds at this chip's clock.
    #[must_use]
    pub fn cycles_to_secs(&self, cycles: f64) -> f64 {
        cycles / self.frequency_hz
    }

    /// Convert a cycle count into microseconds at this chip's clock.
    #[must_use]
    pub fn cycles_to_micros(&self, cycles: f64) -> f64 {
        self.cycles_to_secs(cycles) * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_chips_cover_all_nine_precision_units() {
        for chip in [ChipSpec::training(), ChipSpec::inference()] {
            for unit in ComputeUnit::ALL {
                for &p in unit.precisions() {
                    assert!(
                        chip.peak_ops_per_cycle(unit, p).is_ok(),
                        "{} must define {unit}/{p}",
                        chip.name()
                    );
                }
            }
        }
    }

    #[test]
    fn both_chips_cover_all_paths_and_buffers() {
        for chip in [ChipSpec::training(), ChipSpec::inference()] {
            for path in TransferPath::ALL {
                assert!(chip.transfer(path).is_ok());
            }
            for buffer in Buffer::ALL {
                assert!(chip.capacity(buffer).is_ok());
            }
        }
    }

    #[test]
    fn int8_cube_is_twice_fp16_cube() {
        for chip in [ChipSpec::training(), ChipSpec::inference()] {
            let int8 = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Int8).unwrap();
            let fp16 = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Fp16).unwrap();
            assert_eq!(int8, 2.0 * fp16);
        }
    }

    #[test]
    fn l1_feeds_are_asymmetric() {
        let chip = ChipSpec::training();
        let a = chip.transfer(TransferPath::L1ToL0A).unwrap().bytes_per_cycle;
        let b = chip.transfer(TransferPath::L1ToL0B).unwrap().bytes_per_cycle;
        assert!(a > b, "L1->L0A must be faster than L1->L0B");
    }

    #[test]
    fn inference_chip_is_strictly_slower_on_cube_and_gm() {
        let t = ChipSpec::training();
        let i = ChipSpec::inference();
        assert!(
            i.peak_ops_per_sec(ComputeUnit::Cube, Precision::Fp16).unwrap()
                < t.peak_ops_per_sec(ComputeUnit::Cube, Precision::Fp16).unwrap()
        );
        let tb = t.transfer(TransferPath::GmToUb).unwrap().bytes_per_cycle * t.frequency_hz;
        let ib = i.transfer(TransferPath::GmToUb).unwrap().bytes_per_cycle * i.frequency_hz;
        assert!(ib < tb);
    }

    #[test]
    fn unsupported_precision_is_an_error() {
        let chip = ChipSpec::training();
        assert_eq!(
            chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Fp64),
            Err(ArchError::UnsupportedPrecision {
                unit: ComputeUnit::Cube,
                precision: Precision::Fp64
            })
        );
    }

    #[test]
    fn transfer_efficiency_saturates_with_granularity() {
        let chip = ChipSpec::training();
        let spec = chip.transfer(TransferPath::UbToGm).unwrap();
        let small = spec.efficiency(1 << 10);
        let medium = spec.efficiency(30 << 10);
        let large = spec.efficiency(1 << 20);
        assert!(small < medium && medium < large);
        assert!(large > 0.9, "1 MiB transfers should run near peak, got {large}");
        assert!(medium < 0.82, "30 KiB is 'far below the threshold' (Section 5.2)");
    }

    #[test]
    fn transfer_cycles_are_monotone_in_bytes() {
        let chip = ChipSpec::training();
        for path in TransferPath::ALL {
            let spec = chip.transfer(path).unwrap();
            assert!(spec.cycles(0) < spec.cycles(1024));
            assert!(spec.cycles(1024) < spec.cycles(4096));
        }
    }

    #[test]
    fn time_conversions() {
        let chip = ChipSpec::training();
        let secs = chip.cycles_to_secs(chip.frequency_hz);
        assert!((secs - 1.0).abs() < 1e-12);
        assert!((chip.cycles_to_micros(1500.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let chip = ChipSpec::training();
        let json = serde_json::to_string(&chip).unwrap();
        let back: ChipSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(chip, back);
    }

    #[test]
    fn mte_bandwidth_scaling_targets_one_engine() {
        use crate::MteEngine;
        let base = ChipSpec::training();
        let scaled = base.clone().with_mte_bandwidth_scale(MteEngine::Gm, 2.0);
        let before = base.transfer(TransferPath::GmToUb).unwrap().bytes_per_cycle;
        let after = scaled.transfer(TransferPath::GmToUb).unwrap().bytes_per_cycle;
        assert_eq!(after, 2.0 * before);
        // Other engines untouched.
        assert_eq!(
            base.transfer(TransferPath::UbToGm).unwrap().bytes_per_cycle,
            scaled.transfer(TransferPath::UbToGm).unwrap().bytes_per_cycle
        );
        assert_ne!(base.name(), scaled.name());
    }

    #[test]
    fn compute_scaling_targets_one_unit() {
        let base = ChipSpec::training();
        let scaled = base.clone().with_compute_scale(ComputeUnit::Vector, 4.0);
        assert_eq!(
            scaled.peak_ops_per_cycle(ComputeUnit::Vector, Precision::Fp16).unwrap(),
            4.0 * base.peak_ops_per_cycle(ComputeUnit::Vector, Precision::Fp16).unwrap()
        );
        assert_eq!(
            scaled.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Fp16).unwrap(),
            base.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Fp16).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth scale must be positive")]
    fn zero_bandwidth_scale_panics() {
        let _ = ChipSpec::training().with_mte_bandwidth_scale(crate::MteEngine::Gm, 0.0);
    }

    #[test]
    fn frequency_override() {
        let chip = ChipSpec::training().with_frequency(3.0e9);
        assert!((chip.cycles_to_secs(3.0e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn builtin_specs_validate() {
        assert_eq!(ChipSpec::training().validate(), Ok(()));
        assert_eq!(ChipSpec::inference().validate(), Ok(()));
        // The documented derived specs stay valid too.
        assert_eq!(
            ChipSpec::training()
                .with_mte_bandwidth_scale(crate::MteEngine::Gm, 0.25)
                .with_compute_scale(ComputeUnit::Cube, 2.0)
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn zeroed_bandwidth_fails_validation() {
        let mut chip = ChipSpec::training();
        chip.scale_bandwidth_unchecked(crate::MteEngine::Gm, 0.0);
        let err = chip.validate().unwrap_err();
        match err {
            ArchError::InvalidSpec { chip, detail } => {
                assert_eq!(chip, "ascend-training");
                assert!(detail.contains("bandwidth"), "{detail}");
            }
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_frequency_fails_validation() {
        let chip = ChipSpec::training().with_frequency(f64::INFINITY);
        assert!(matches!(chip.validate(), Err(ArchError::InvalidSpec { .. })));
    }
}
