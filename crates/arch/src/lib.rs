#![warn(missing_docs)]

//! Architectural model of the Huawei Ascend AICore.
//!
//! This crate describes the *static* hardware structure used throughout the
//! reproduction of "Squeezing Operator Performance Potential for the Ascend
//! Architecture" (ASPLOS 2025):
//!
//! - [`Precision`] — numeric precisions supported by the compute units;
//! - [`ComputeUnit`] — the Scalar, Vector, and Cube units;
//! - [`Buffer`] — the on-chip memory buffers (GM, L1, UB, L0A/B/C);
//! - [`TransferPath`] — the 20 data-transfer paths between buffers;
//! - [`Component`] — the paper's component abstraction (3 compute units +
//!   3 memory-transfer engines), the granularity at which instructions
//!   execute serially;
//! - [`ChipSpec`] — concrete peak rates for a training and an inference
//!   chip.
//!
//! # Examples
//!
//! ```
//! use ascend_arch::{ChipSpec, Component, ComputeUnit, Precision};
//!
//! let chip = ChipSpec::training();
//! // Cube INT8 peak throughput is twice the FP16 peak (paper, Section 2.3).
//! let int8 = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Int8).unwrap();
//! let fp16 = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Fp16).unwrap();
//! assert_eq!(int8, 2.0 * fp16);
//! assert_eq!(Component::ALL.len(), 6);
//! ```

mod chip;
mod component;
mod error;
mod memory;
mod precision;
mod transfer;
mod unit;

pub use chip::{ChipKind, ChipSpec, TransferSpec};
pub use component::{Component, ComponentKind};
pub use error::ArchError;
pub use memory::{Buffer, MemLevel};
pub use precision::Precision;
pub use transfer::{MteEngine, TransferClass, TransferPath};
pub use unit::ComputeUnit;
