//! The paper's central abstraction: the *component*.

use crate::{ComputeUnit, MteEngine};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a component computes or moves data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// A compute unit (Scalar, Vector, Cube).
    Compute,
    /// A memory transfer engine (MTE-GM, MTE-L1, MTE-UB).
    Memory,
}

/// A *component*: a hardware unit with its own instruction queue.
///
/// Instructions within one component execute **serially**; instructions on
/// different components execute **in parallel** (paper, Section 3.1). Each
/// component corresponds to a physical instruction queue: the three compute
/// units and the three MTE engines.
///
/// # Examples
///
/// ```
/// use ascend_arch::{Component, ComponentKind};
/// assert_eq!(Component::ALL.len(), 6);
/// assert_eq!(Component::Cube.kind(), ComponentKind::Compute);
/// assert_eq!(Component::MteGm.kind(), ComponentKind::Memory);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Component {
    /// The Scalar compute unit's queue.
    Scalar,
    /// The Vector compute unit's queue.
    Vector,
    /// The Cube compute unit's queue.
    Cube,
    /// The MTE scheduling transfers out of global memory.
    MteGm,
    /// The MTE scheduling transfers out of the L1 Buffer.
    MteL1,
    /// The MTE scheduling transfers out of the Unified Buffer.
    MteUb,
}

impl Component {
    /// All six components.
    pub const ALL: [Component; 6] = [
        Component::Scalar,
        Component::Vector,
        Component::Cube,
        Component::MteGm,
        Component::MteL1,
        Component::MteUb,
    ];

    /// The compute components.
    pub const COMPUTE: [Component; 3] = [Component::Scalar, Component::Vector, Component::Cube];

    /// The memory (MTE) components.
    pub const MEMORY: [Component; 3] = [Component::MteGm, Component::MteL1, Component::MteUb];

    /// Maps a compute unit to its component.
    #[must_use]
    pub const fn from_unit(unit: ComputeUnit) -> Component {
        match unit {
            ComputeUnit::Scalar => Component::Scalar,
            ComputeUnit::Vector => Component::Vector,
            ComputeUnit::Cube => Component::Cube,
        }
    }

    /// Maps an MTE engine to its component.
    #[must_use]
    pub const fn from_mte(engine: MteEngine) -> Component {
        engine.component()
    }

    /// The compute unit behind this component, if it is a compute component.
    #[must_use]
    pub const fn as_unit(self) -> Option<ComputeUnit> {
        match self {
            Component::Scalar => Some(ComputeUnit::Scalar),
            Component::Vector => Some(ComputeUnit::Vector),
            Component::Cube => Some(ComputeUnit::Cube),
            _ => None,
        }
    }

    /// The MTE engine behind this component, if it is a memory component.
    #[must_use]
    pub const fn as_mte(self) -> Option<MteEngine> {
        match self {
            Component::MteGm => Some(MteEngine::Gm),
            Component::MteL1 => Some(MteEngine::L1),
            Component::MteUb => Some(MteEngine::Ub),
            _ => None,
        }
    }

    /// Compute vs. memory.
    #[must_use]
    pub const fn kind(self) -> ComponentKind {
        match self {
            Component::Scalar | Component::Vector | Component::Cube => ComponentKind::Compute,
            Component::MteGm | Component::MteL1 | Component::MteUb => ComponentKind::Memory,
        }
    }

    /// Stable index in `0..6`, usable for dense per-component tables.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Component::Scalar => 0,
            Component::Vector => 1,
            Component::Cube => 2,
            Component::MteGm => 3,
            Component::MteL1 => 4,
            Component::MteUb => 5,
        }
    }

    /// Short lowercase name, e.g. `"mte-gm"`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Component::Scalar => "scalar",
            Component::Vector => "vector",
            Component::Cube => "cube",
            Component::MteGm => "mte-gm",
            Component::MteL1 => "mte-l1",
            Component::MteUb => "mte-ub",
        }
    }

    /// Whether a compute unit can meaningfully be paired with a memory
    /// component in the roofline analysis (paper, Section 4.3).
    ///
    /// `(MTE-L1, Vector)` and `(MTE-L1, Scalar)` are impossible: the L1
    /// Buffer only feeds the Cube's L0 buffers on this chip.
    #[must_use]
    pub const fn pairs_with(self, unit: ComputeUnit) -> bool {
        match self {
            Component::MteL1 => matches!(unit, ComputeUnit::Cube),
            Component::MteGm | Component::MteUb => true,
            // A compute component does not pair with compute units.
            Component::Scalar | Component::Vector | Component::Cube => false,
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_components_three_and_three() {
        assert_eq!(Component::ALL.len(), 6);
        assert_eq!(Component::COMPUTE.len(), 3);
        assert_eq!(Component::MEMORY.len(), 3);
        for c in Component::COMPUTE {
            assert_eq!(c.kind(), ComponentKind::Compute);
            assert!(c.as_unit().is_some());
            assert!(c.as_mte().is_none());
        }
        for c in Component::MEMORY {
            assert_eq!(c.kind(), ComponentKind::Memory);
            assert!(c.as_mte().is_some());
            assert!(c.as_unit().is_none());
        }
    }

    #[test]
    fn indices_are_a_permutation() {
        let mut idx: Vec<usize> = Component::ALL.iter().map(|c| c.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn pruned_pairs_match_section_4_3() {
        // 3 MTEs x 3 units = 9 candidate pairs; 2 are impossible -> 7.
        let valid: usize = Component::MEMORY
            .iter()
            .flat_map(|m| ComputeUnit::ALL.iter().map(move |u| (m, u)))
            .filter(|(m, u)| m.pairs_with(**u))
            .count();
        assert_eq!(valid, 7, "Section 4.3 prunes 180 combinations down to 7");
        assert!(!Component::MteL1.pairs_with(ComputeUnit::Vector));
        assert!(!Component::MteL1.pairs_with(ComputeUnit::Scalar));
        assert!(Component::MteL1.pairs_with(ComputeUnit::Cube));
    }

    #[test]
    fn unit_round_trip() {
        for unit in ComputeUnit::ALL {
            assert_eq!(Component::from_unit(unit).as_unit(), Some(unit));
        }
        for engine in MteEngine::ALL {
            assert_eq!(Component::from_mte(engine).as_mte(), Some(engine));
        }
    }
}
