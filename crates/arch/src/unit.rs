//! The three dedicated compute units of the AICore.

use crate::Precision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the AICore's three compute units (paper, Section 2.1).
///
/// - [`ComputeUnit::Scalar`] behaves like a small CPU core and handles
///   control flow and logic;
/// - [`ComputeUnit::Vector`] is a SIMD engine for element-wise math
///   (normalisation, softmax, pooling, activations);
/// - [`ComputeUnit::Cube`] accelerates matrix multiply-accumulate.
///
/// # Examples
///
/// ```
/// use ascend_arch::{ComputeUnit, Precision};
/// assert!(ComputeUnit::Cube.supports(Precision::Int8));
/// assert!(!ComputeUnit::Vector.supports(Precision::Int8));
/// // 4 + 3 + 2 = 9 precision-compute units in total.
/// let total: usize = ComputeUnit::ALL.iter().map(|u| u.precisions().len()).sum();
/// assert_eq!(total, 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ComputeUnit {
    /// Control and logic unit (INT32/FP16/FP32/FP64).
    Scalar,
    /// SIMD vector unit (INT32/FP16/FP32).
    Vector,
    /// Matrix multiply-accumulate unit (INT8/FP16).
    Cube,
}

impl ComputeUnit {
    /// All compute units, from least to most arithmetic throughput.
    pub const ALL: [ComputeUnit; 3] = [ComputeUnit::Scalar, ComputeUnit::Vector, ComputeUnit::Cube];

    /// The precisions this unit can execute, per the paper's training chip.
    #[must_use]
    pub const fn precisions(self) -> &'static [Precision] {
        match self {
            ComputeUnit::Scalar => {
                &[Precision::Int32, Precision::Fp16, Precision::Fp32, Precision::Fp64]
            }
            ComputeUnit::Vector => &[Precision::Int32, Precision::Fp16, Precision::Fp32],
            ComputeUnit::Cube => &[Precision::Int8, Precision::Fp16],
        }
    }

    /// Whether `precision` can execute on this unit.
    #[must_use]
    pub fn supports(self, precision: Precision) -> bool {
        self.precisions().contains(&precision)
    }

    /// Short lowercase name, e.g. `"cube"`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            ComputeUnit::Scalar => "scalar",
            ComputeUnit::Vector => "vector",
            ComputeUnit::Cube => "cube",
        }
    }
}

impl fmt::Display for ComputeUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_precision_compute_units() {
        let total: usize = ComputeUnit::ALL.iter().map(|u| u.precisions().len()).sum();
        assert_eq!(total, 9, "the paper counts 9 precision-compute units");
    }

    #[test]
    fn cube_is_low_precision_only() {
        assert!(ComputeUnit::Cube.supports(Precision::Int8));
        assert!(ComputeUnit::Cube.supports(Precision::Fp16));
        assert!(!ComputeUnit::Cube.supports(Precision::Fp32));
        assert!(!ComputeUnit::Cube.supports(Precision::Fp64));
    }

    #[test]
    fn scalar_supports_fp64_exclusively() {
        assert!(ComputeUnit::Scalar.supports(Precision::Fp64));
        assert!(!ComputeUnit::Vector.supports(Precision::Fp64));
        assert!(!ComputeUnit::Cube.supports(Precision::Fp64));
    }

    #[test]
    fn precision_lists_have_no_duplicates() {
        for unit in ComputeUnit::ALL {
            let mut seen = Vec::new();
            for &p in unit.precisions() {
                assert!(!seen.contains(&p), "{unit} lists {p} twice");
                seen.push(p);
            }
        }
    }
}
