//! Numeric precisions supported by the Ascend compute units.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A numeric precision of a compute instruction.
///
/// The paper's training chip exposes INT8/FP16 on the Cube unit,
/// INT32/FP16/FP32 on the Vector unit, and INT32/FP16/FP32/FP64 on the
/// Scalar unit, for a total of nine precision-compute units (Section 2.1).
///
/// # Examples
///
/// ```
/// use ascend_arch::Precision;
/// assert_eq!(Precision::Fp16.bytes(), 2);
/// assert!(Precision::Int8 < Precision::Fp64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 8-bit signed integer (Cube only).
    Int8,
    /// 16-bit IEEE floating point.
    Fp16,
    /// 32-bit signed integer (Vector and Scalar).
    Int32,
    /// 32-bit IEEE floating point.
    Fp32,
    /// 64-bit IEEE floating point (Scalar only).
    Fp64,
}

impl Precision {
    /// All precisions, ordered by element width.
    pub const ALL: [Precision; 5] =
        [Precision::Int8, Precision::Fp16, Precision::Int32, Precision::Fp32, Precision::Fp64];

    /// Size of one element in bytes.
    ///
    /// ```
    /// # use ascend_arch::Precision;
    /// assert_eq!(Precision::Fp64.bytes(), 8);
    /// ```
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            Precision::Int8 => 1,
            Precision::Fp16 => 2,
            Precision::Int32 | Precision::Fp32 => 4,
            Precision::Fp64 => 8,
        }
    }

    /// Whether this is an integer precision.
    #[must_use]
    pub const fn is_integer(self) -> bool {
        matches!(self, Precision::Int8 | Precision::Int32)
    }

    /// Short lowercase mnemonic, e.g. `"fp16"`.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Precision::Int8 => "int8",
            Precision::Fp16 => "fp16",
            Precision::Int32 => "int32",
            Precision::Fp32 => "fp32",
            Precision::Fp64 => "fp64",
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_are_monotone_in_declared_order_except_int32_fp32_tie() {
        let widths: Vec<u64> = Precision::ALL.iter().map(|p| p.bytes()).collect();
        for pair in widths.windows(2) {
            assert!(pair[0] <= pair[1], "widths must be non-decreasing: {widths:?}");
        }
    }

    #[test]
    fn display_matches_mnemonic() {
        for p in Precision::ALL {
            assert_eq!(p.to_string(), p.mnemonic());
        }
    }

    #[test]
    fn integer_classification() {
        assert!(Precision::Int8.is_integer());
        assert!(Precision::Int32.is_integer());
        assert!(!Precision::Fp16.is_integer());
        assert!(!Precision::Fp32.is_integer());
        assert!(!Precision::Fp64.is_integer());
    }

    #[test]
    fn serde_round_trip() {
        for p in Precision::ALL {
            let json = serde_json::to_string(&p).unwrap();
            let back: Precision = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
    }
}
