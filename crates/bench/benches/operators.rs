//! Criterion benches over the operator library: simulated cycle counts of
//! baseline vs. optimized variants (wall time here measures the harness;
//! the simulated cycles are printed by the figure binaries).

use ascend_arch::ChipSpec;
use ascend_ops::{AvgPool, Conv2d, Depthwise, Gelu, Operator, OptFlags};
use ascend_sim::Simulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

type Case = (&'static str, Box<dyn Operator>, Box<dyn Operator>);

fn bench_variants(c: &mut Criterion) {
    let chip = ChipSpec::training();
    let sim = Simulator::new(chip.clone());
    let cases: Vec<Case> = vec![
        (
            "depthwise",
            Box::new(Depthwise::new(1 << 18)),
            Box::new(
                Depthwise::new(1 << 18)
                    .with_flags(OptFlags::new().ais(true).rus(true).pp(true).itg(true).mrt(true)),
            ),
        ),
        (
            "conv2d",
            Box::new(Conv2d::new(1 << 17, 288)),
            Box::new(
                Conv2d::new(1 << 17, 288).with_flags(OptFlags::new().rsd(true).mrt(true).pp(true)),
            ),
        ),
        (
            "avgpool",
            Box::new(AvgPool::new(1 << 14)),
            Box::new(AvgPool::new(1 << 14).with_flags(OptFlags::new().aip(true))),
        ),
        (
            "gelu",
            Box::new(Gelu::new(1 << 18)),
            Box::new(Gelu::new(1 << 18).with_flags(OptFlags::new().ea(true))),
        ),
    ];
    let mut group = c.benchmark_group("operator_simulation");
    for (name, base, tuned) in &cases {
        let base_kernel = base.build(&chip).unwrap();
        let tuned_kernel = tuned.build(&chip).unwrap();
        group.bench_with_input(BenchmarkId::new(*name, "baseline"), &base_kernel, |b, k| {
            b.iter(|| sim.simulate(black_box(k)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new(*name, "optimized"), &tuned_kernel, |b, k| {
            b.iter(|| sim.simulate(black_box(k)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
