//! Criterion microbenches of the harness itself: simulator throughput,
//! profiling, and roofline-analysis cost.

use ascend_arch::ChipSpec;
use ascend_ops::{AddRelu, MatMul, Operator, OptFlags};
use ascend_profile::{Profile, Profiler};
use ascend_roofline::{analyze, Thresholds};
use ascend_sim::Simulator;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let chip = ChipSpec::training();
    let sim = Simulator::new(chip.clone());
    let small = AddRelu::new(1 << 16).build(&chip).unwrap();
    let large =
        MatMul::new(512, 512, 512).with_flags(OptFlags::new().pp(true)).build(&chip).unwrap();

    let mut group = c.benchmark_group("simulator");
    group.bench_function("add_relu_64k_elements", |b| {
        b.iter(|| sim.simulate(black_box(&small)).unwrap());
    });
    group.bench_function("matmul_512_cubed", |b| {
        b.iter(|| sim.simulate(black_box(&large)).unwrap());
    });
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let chip = ChipSpec::training();
    let kernel = AddRelu::new(1 << 18).build(&chip).unwrap();
    let (profile, trace) = Profiler::new(chip.clone()).run(&kernel).unwrap();
    let thresholds = Thresholds::default();

    let mut group = c.benchmark_group("analysis");
    group.bench_function("profile_collect", |b| {
        b.iter(|| Profile::collect(black_box(&kernel), black_box(&trace)));
    });
    group.bench_function("roofline_analyze", |b| {
        b.iter(|| analyze(black_box(&profile), &chip, &thresholds));
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let chip = ChipSpec::training();
    let mut group = c.benchmark_group("kernel_generation");
    group.bench_function("add_relu_1m_elements", |b| {
        b.iter(|| AddRelu::new(1 << 20).build(black_box(&chip)).unwrap());
    });
    group.bench_function("matmul_512_cubed", |b| {
        b.iter(|| MatMul::new(512, 512, 512).build(black_box(&chip)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_analysis, bench_generation);
criterion_main!(benches);
