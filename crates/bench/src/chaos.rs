//! `bench chaos`: the one-seed cross-tier chaos orchestrator.
//!
//! One SplitMix64 seed expands (via [`ChaosSchedule`]) into a
//! coordinated timeline of shard `kill -9`s, at-rest store corruption,
//! byte-level wire faults on the shard pipes, a seeded open-loop load
//! profile, and (optionally) a silently-wrong engine. The schedule is
//! driven against a real [`ClusterService`] — worker processes, durable
//! store segments, heartbeats and all — and the run is judged against
//! the centralized [`InvariantReport`] contract:
//!
//! * **exactly-once** — every admitted ticket reaches one terminal state;
//! * **tickets-settled** — no ticket is left pending after drain;
//! * **no-corrupt-served** — every served result recomputes
//!   bit-identically on an independent clean pipeline;
//! * **quarantine-permanent** — a quarantined key stays barred and no
//!   store segment resurrects it;
//! * **store-verify** — every shard segment passes a read-only
//!   [`ResultStore::verify`] scan (at-rest damage is excused only on
//!   shards the schedule corrupted);
//! * **bounded-availability-gap** — the cluster never stays fully down
//!   longer than the configured bound;
//! * **drain-hygiene** — drain quiesces and leaves no live worker pids.
//!
//! On any violation the harness prints the seed, a copy-pasteable
//! replay command, then delta-debugs ([`ddmin`]) the fault timeline to
//! a minimal reproducing subsequence and prints the minimized schedule
//! plus its `--keep` replay command. `--canary` arms a known defect (a
//! [`BuggyEngine`] the cluster tier cannot audit away) and succeeds
//! only if the contract catches it and minimization isolates it.

use ascend_arch::ChipSpec;
use ascend_faults::{corrupt_file, ChaosConfig, ChaosFault, ChaosSchedule, DiskFault, SplitMix64};
use ascend_ops::OpSpec;
use ascend_pipeline::{
    result_digest, AnalysisPipeline, ClusterConfig, ClusterService, InvariantReport, PipelineError,
    Priority, ResultStore, RunPolicy, SandboxConfig, Ticket, WorkSpec,
};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::{experiments_dir, header};

/// Parsed `bench chaos` options.
struct ChaosArgs {
    /// Number of seeds swept when no explicit `--seed` is given.
    seeds: u64,
    /// Explicit seed (single run) instead of a sweep.
    seed: Option<u64>,
    duration: Duration,
    shards: usize,
    /// Arm the canary defect and require the contract to catch it.
    canary: bool,
    /// Replay only these fault indices of the expanded schedule.
    keep: Option<Vec<usize>>,
    /// Bound for the bounded-availability-gap invariant.
    gap_bound: Duration,
}

impl ChaosArgs {
    fn parse(argv: &[String]) -> Result<ChaosArgs, String> {
        let mut args = ChaosArgs {
            seeds: 3,
            seed: None,
            duration: Duration::from_millis(300),
            shards: 2,
            canary: false,
            keep: None,
            gap_bound: Duration::from_millis(1500),
        };
        let mut i = 0;
        while i < argv.len() {
            let value = argv.get(i + 1).map(String::as_str);
            match (argv[i].as_str(), value) {
                ("--canary", _) => {
                    args.canary = true;
                    i += 1;
                    continue;
                }
                ("--seeds", Some(v)) => {
                    args.seeds = v.parse().map_err(|_| format!("malformed --seeds {v:?}"))?;
                }
                ("--seed", Some(v)) => {
                    let raw = v.trim_start_matches("0x");
                    args.seed = Some(
                        u64::from_str_radix(raw, 16)
                            .map_err(|_| format!("malformed --seed {v:?} (expected hex)"))?,
                    );
                }
                ("--duration-ms", Some(v)) => {
                    let ms: u64 =
                        v.parse().map_err(|_| format!("malformed --duration-ms {v:?}"))?;
                    args.duration = Duration::from_millis(ms.max(1));
                }
                ("--shards", Some(v)) => {
                    args.shards = v.parse().map_err(|_| format!("malformed --shards {v:?}"))?;
                    if args.shards == 0 {
                        return Err("--shards must be >= 1".into());
                    }
                }
                ("--gap-bound-ms", Some(v)) => {
                    let ms: u64 =
                        v.parse().map_err(|_| format!("malformed --gap-bound-ms {v:?}"))?;
                    args.gap_bound = Duration::from_millis(ms);
                }
                ("--keep", Some(v)) => {
                    let mut keep = Vec::new();
                    for part in v.split(',').filter(|part| !part.trim().is_empty()) {
                        keep.push(
                            part.trim()
                                .parse()
                                .map_err(|_| format!("malformed --keep index {part:?}"))?,
                        );
                    }
                    args.keep = Some(keep);
                }
                (flag, _) => {
                    return Err(format!(
                        "unrecognized or malformed: {flag}\n\
                         usage: bench chaos [--seeds N] [--seed HEX] [--duration-ms MS]\n\
                         \x20                  [--shards N] [--gap-bound-ms MS] [--canary] \
                         [--keep i,j,...]"
                    ));
                }
            }
            i += 2;
        }
        if args.keep.is_some() && args.seed.is_none() {
            return Err("--keep needs an explicit --seed to replay against".into());
        }
        Ok(args)
    }

    fn config(&self) -> ChaosConfig {
        ChaosConfig::new(self.shards, self.duration)
    }

    /// The expanded (plus canary, when armed) schedule for `seed` —
    /// exactly what a replay of the same flags reconstructs, so fault
    /// indices printed by minimization stay valid across processes.
    fn schedule_for(&self, seed: u64) -> ChaosSchedule {
        let schedule = ChaosSchedule::expand(seed, &self.config());
        if self.canary {
            schedule.with_fault(ChaosFault::Buggy {
                seed: seed ^ 0x0BAD_CA4A_0B06_0001,
                magnitude: 1e-3,
            })
        } else {
            schedule
        }
    }

    /// The copy-pasteable command reproducing this run.
    fn replay_command(&self, seed: u64, keep: Option<&[usize]>) -> String {
        let mut cmd = format!(
            "cargo run --release -p ascend-bench --bin bench -- chaos --seed {seed:#x} \
             --duration-ms {} --shards {}",
            self.duration.as_millis(),
            self.shards
        );
        if self.canary {
            cmd.push_str(" --canary");
        }
        if let Some(keep) = keep {
            let list: Vec<String> = keep.iter().map(usize::to_string).collect();
            cmd.push_str(&format!(" --keep {}", list.join(",")));
        }
        cmd
    }
}

/// Entry point for `bench chaos` (dispatched from the `bench` binary).
///
/// # Errors
///
/// Malformed flags; an invariant violation on any swept seed (after the
/// replay command and minimized schedule are printed); a `--canary` run
/// whose defect was *not* caught or not minimized tightly enough.
pub fn run_chaos(argv: &[String]) -> Result<(), Box<dyn Error>> {
    let args = ChaosArgs::parse(argv)?;
    header("chaos", "one-seed cross-tier fault schedule vs the invariant contract");

    let seeds: Vec<u64> = match args.seed {
        Some(seed) => vec![seed],
        None => {
            let mut rng = SplitMix64::new(0xC4A0_55EE_D000_0001);
            (0..args.seeds.max(1)).map(|_| rng.next_u64()).collect()
        }
    };

    let mut run_counter = 0u64;
    for seed in seeds {
        let schedule = match &args.keep {
            Some(keep) => args.schedule_for(seed).subset(keep),
            None => args.schedule_for(seed),
        };
        println!(
            "seed {seed:#018x}: {} fault event(s), {} arrival(s) over {:?}",
            schedule.faults.len(),
            schedule.load.schedule().len(),
            args.duration
        );
        for (index, fault) in schedule.faults.iter().enumerate() {
            println!("  [{index:>2}] {fault}");
        }
        let report = run_schedule(&schedule, &args, &run_label(seed, &mut run_counter))?;
        print!("{report}");

        if report.is_clean() {
            if args.canary {
                return Err(format!(
                    "canary defect was NOT caught — the invariant contract is blind; \
                     replay: {}",
                    args.replay_command(seed, args.keep.as_deref())
                )
                .into());
            }
            println!("  seed {seed:#018x}: all invariants held\n");
            continue;
        }

        // A violation: print the reproduction recipe first, so even a
        // crash during minimization leaves an actionable log.
        println!("\nINVARIANT VIOLATION at seed {seed:#018x}");
        println!("replay: {}", args.replay_command(seed, args.keep.as_deref()));
        if args.keep.is_some() {
            // An explicit subset replay is already minimal by request.
            return Err("invariant violation reproduced (see report above)".into());
        }

        let violated: HashSet<String> =
            report.violations().map(|check| check.name.clone()).collect();
        println!("minimizing {} fault event(s) with ddmin...", schedule.faults.len());
        let minimal = ascend_faults::ddmin(schedule.faults.len(), |keep| {
            run_counter += 1;
            let probe = schedule.subset(keep);
            match run_schedule(&probe, &args, &format!("{seed:016x}-probe-{run_counter}")) {
                Ok(probe_report) => {
                    let reproduced =
                        probe_report.violations().any(|check| violated.contains(&check.name));
                    println!(
                        "  probe {{{}}} -> {}",
                        keep.iter().map(usize::to_string).collect::<Vec<_>>().join(","),
                        if reproduced { "reproduces" } else { "clean" }
                    );
                    reproduced
                }
                Err(err) => {
                    eprintln!("  probe failed to run ({err}); treating as non-reproducing");
                    false
                }
            }
        });
        println!("minimized schedule ({} of {} event(s)):", minimal.len(), schedule.faults.len());
        for index in &minimal {
            println!("  [{index:>2}] {}", schedule.faults[*index]);
        }
        println!("minimized replay: {}", args.replay_command(seed, Some(&minimal)));

        if args.canary {
            if minimal.len() <= 8 {
                println!(
                    "canary: defect caught and minimized to {} event(s) — contract is live\n",
                    minimal.len()
                );
                continue;
            }
            return Err(format!(
                "canary caught but minimization stopped at {} events (want <= 8)",
                minimal.len()
            )
            .into());
        }
        return Err(format!(
            "invariant violation at seed {seed:#018x} (minimized to {} event(s), see above)",
            minimal.len()
        )
        .into());
    }
    println!("chaos sweep complete: every seed upheld the full invariant contract");
    Ok(())
}

fn run_label(seed: u64, counter: &mut u64) -> String {
    *counter += 1;
    format!("{seed:016x}-run-{counter}")
}

/// Drives one schedule against a live cluster and evaluates the full
/// invariant contract. The store directory is private to the run and
/// removed afterwards (the printed report is the artifact).
fn run_schedule(
    schedule: &ChaosSchedule,
    args: &ChaosArgs,
    label: &str,
) -> Result<InvariantReport, Box<dyn Error>> {
    let store_dir = experiments_dir().join(format!("chaos-{label}"));
    let _ = std::fs::remove_dir_all(&store_dir);
    std::fs::create_dir_all(&store_dir)?;

    let chip = ChipSpec::training();
    let cluster = ClusterService::start(
        chip,
        ClusterConfig {
            shards: args.shards,
            queue_capacity: 256,
            default_deadline: Some(Duration::from_secs(2)),
            max_failovers: 4,
            respawn_backoff: Duration::from_millis(10),
            respawn_backoff_max: Duration::from_millis(200),
            seed: schedule.seed,
            store_dir: Some(store_dir.clone()),
            sandbox: SandboxConfig {
                heartbeat_timeout: Duration::from_millis(300),
                wall_clock_limit: Duration::from_secs(2),
                ..SandboxConfig::default()
            },
            wire_faults: schedule.wire_plan(),
            buggy: schedule.buggy(),
            ..ClusterConfig::default()
        },
    )?;
    let context = cluster.context();

    // Kill and kill-then-corrupt events, merged into one timeline the
    // submit loop fires between arrivals (wire faults fire inside the
    // transports; the buggy engine is armed for the whole run).
    let mut events: Vec<(Duration, usize, Option<DiskFault>)> = Vec::new();
    for kill in schedule.kills() {
        events.push((kill.at, kill.shard, None));
    }
    for (at, shard, fault) in schedule.disk_faults() {
        events.push((at, shard, Some(fault)));
    }
    events.sort_by_key(|(at, ..)| *at);

    let arrivals = schedule.load.schedule();
    let quarantine_after = arrivals.len() / 2;
    let mut quarantined_key: Option<u64> = None;
    let mut tickets: Vec<(u64, Ticket)> = Vec::new();
    let mut specs: HashMap<u64, WorkSpec> = HashMap::new();

    let stop_sampler = AtomicBool::new(false);
    let longest_gap = std::thread::scope(|scope| {
        let sampler = scope.spawn(|| {
            // The availability probe: the longest window with zero live
            // shards, measured only after the cluster first came up (the
            // initial spawn is bring-up, not an outage).
            let mut longest = Duration::ZERO;
            let mut seen_live = false;
            let mut down_since: Option<Instant> = None;
            while !stop_sampler.load(Ordering::Relaxed) {
                let live = cluster.health().live_shards();
                if live > 0 {
                    seen_live = true;
                    if let Some(since) = down_since.take() {
                        longest = longest.max(since.elapsed());
                    }
                } else if seen_live && down_since.is_none() {
                    down_since = Some(Instant::now());
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            if let Some(since) = down_since {
                longest = longest.max(since.elapsed());
            }
            longest
        });

        let start = Instant::now();
        let mut next_event = 0usize;
        for (n, arrival) in arrivals.iter().enumerate() {
            while next_event < events.len() && events[next_event].0 <= arrival.at {
                fire_event(&cluster, &events[next_event]);
                next_event += 1;
            }
            if let Some(wait) = arrival.at.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            if n == quarantine_after {
                if let Some((key, _)) = tickets.first() {
                    cluster.quarantine(*key);
                    quarantined_key = Some(*key);
                }
            }
            let spec = chaos_spec_for(arrival.draw);
            let key = cluster.cache_key(&spec);
            let priority =
                if arrival.interactive { Priority::Interactive } else { Priority::Sweep };
            match cluster.submit(spec, priority) {
                Ok(ticket) => {
                    specs.entry(key).or_insert(spec);
                    tickets.push((key, ticket));
                }
                Err(PipelineError::Overloaded { .. }) => {}
                Err(err) => eprintln!("  submit failed: {err}"),
            }
        }
        for event in &events[next_event.min(events.len())..] {
            fire_event(&cluster, event);
        }
        stop_sampler.store(true, Ordering::Relaxed);
        sampler.join().expect("availability sampler never panics")
    });

    let drain = cluster.drain(Duration::from_secs(30));
    let health = cluster.health();

    let mut report = InvariantReport::new();
    report.exactly_once(&health.counters);
    let settled = tickets.iter().filter(|(_, ticket)| ticket.try_result().is_some()).count();
    report.tickets_settled(settled, tickets.len() - settled);

    // Bit-identity: recompute every distinct served key on a fresh,
    // independent, fault-free pipeline and compare full result digests.
    let oracle = AnalysisPipeline::new(ChipSpec::training());
    let mut expected: HashMap<u64, Option<u64>> = HashMap::new();
    let (mut compared, mut mismatches) = (0u64, 0u64);
    for (key, ticket) in &tickets {
        let Some(Ok(result)) = ticket.try_result() else { continue };
        compared += 1;
        let clean = *expected.entry(*key).or_insert_with(|| {
            let spec = &specs[key];
            oracle
                .run_supervised(spec.instantiate().as_ref(), &RunPolicy::default())
                .ok()
                .map(|clean| result_digest(&clean))
        });
        if clean != Some(result_digest(&result)) {
            mismatches += 1;
        }
    }
    report.bit_identity(mismatches, compared);

    // Store verification, shard by shard; damage is excused only on the
    // shards this schedule corrupted at rest.
    let damaged: HashSet<usize> =
        schedule.disk_faults().iter().map(|(_, shard, _)| *shard).collect();
    let mut resurrected = 0u64;
    for index in 0..args.shards {
        let Some(path) = cluster.shard_store_path(index) else { continue };
        if !path.exists() {
            continue;
        }
        match ResultStore::verify(&path) {
            Ok(verify) => {
                resurrected += verify.resurrected;
                report.store_verify(
                    &format!("shard-{index}"),
                    &verify,
                    context,
                    damaged.contains(&index),
                );
            }
            Err(err) => report.check(
                &format!("store-verify-shard-{index}"),
                damaged.contains(&index),
                format!("verify refused: {err}"),
            ),
        }
    }
    let still_quarantined = quarantined_key.is_none_or(|key| cluster.is_quarantined(key));
    report.quarantine_integrity(still_quarantined, resurrected);
    report.availability(longest_gap, args.gap_bound);
    let live_pids = health
        .shards
        .iter()
        .filter_map(|shard| shard.pid)
        .filter(|pid| Path::new(&format!("/proc/{pid}")).exists())
        .count();
    report.drain_hygiene(drain.quiesced, live_pids);

    drop(cluster);
    let _ = std::fs::remove_dir_all(&store_dir);
    Ok(report)
}

/// Fires one timeline event: a bare `kill -9`, or a kill followed by
/// at-rest corruption of the victim's store segment (errors ignored —
/// the segment may not exist yet, which is just a milder schedule).
fn fire_event(cluster: &ClusterService, event: &(Duration, usize, Option<DiskFault>)) {
    let (at, shard, disk) = event;
    let landed = cluster.kill_shard(*shard);
    match disk {
        None => {
            if landed {
                println!("  [{:6.1} ms] kill -9 shard {shard}", at.as_secs_f64() * 1e3);
            }
        }
        Some(fault) => {
            let corrupted: Option<PathBuf> = cluster
                .shard_store_path(*shard)
                .filter(|path| path.exists())
                .filter(|path| corrupt_file(path, *fault).is_ok());
            println!(
                "  [{:6.1} ms] kill -9 shard {shard} + disk fault {fault:?}{}",
                at.as_secs_f64() * 1e3,
                if corrupted.is_some() { "" } else { " (segment absent; kill only)" }
            );
        }
    }
}

/// The traffic mix: small clean specs spanning four operators and five
/// sizes, the same shape model as the serve binary's cluster mode.
fn chaos_spec_for(draw: u64) -> WorkSpec {
    let elements = 1 << (10 + draw % 5);
    WorkSpec::from(match (draw >> 8) % 4 {
        0 => OpSpec::add_relu(elements),
        1 => OpSpec::softmax(elements),
        2 => OpSpec::layer_norm(elements),
        _ => OpSpec::gelu(elements),
    })
}
