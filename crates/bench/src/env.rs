//! Centralized parsing of the `ASCEND_*` environment knobs.
//!
//! Every binary used to hand-roll its own `std::env::var(..).parse()`
//! with its own (often silent) failure policy: a typo like
//! `ASCEND_CLUSTER_SHARDS=abc` would quietly fall back to the default
//! and the operator would never learn their knob was ignored. All knob
//! reads now go through [`env_knob`], which makes malformed values loud
//! and fatal, or [`parse_env`], the pure fallible core for callers that
//! want to decide the failure policy themselves.

use std::fmt::Display;
use std::str::FromStr;

/// Reads and parses the environment variable `name`.
///
/// * unset (or not valid Unicode) → `Ok(None)`;
/// * set and parsable as `T` (after trimming) → `Ok(Some(value))`;
/// * set but malformed → `Err` with a message naming the variable, the
///   offending value, and `expected` (e.g. `"a shard count (integer >= 1)"`).
///
/// # Errors
///
/// Returns a human-readable description when the variable is set but
/// does not parse as `T`.
pub fn parse_env<T: FromStr>(name: &str, expected: &str) -> Result<Option<T>, String>
where
    T::Err: Display,
{
    let Ok(raw) = std::env::var(name) else { return Ok(None) };
    match raw.trim().parse::<T>() {
        Ok(value) => Ok(Some(value)),
        Err(err) => Err(format!("malformed {name}={raw:?}: {err}; expected {expected}")),
    }
}

/// [`parse_env`] with the loud failure policy every binary shares: a
/// malformed knob prints the error to stderr and exits with status 2
/// (the same code the CLI parsers use for bad flags) instead of being
/// silently ignored.
#[must_use]
pub fn env_knob<T: FromStr>(name: &str, expected: &str) -> Option<T>
where
    T::Err: Display,
{
    match parse_env(name, expected) {
        Ok(value) => value,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_is_none() {
        assert_eq!(parse_env::<u64>("ASCEND_TEST_UNSET_KNOB", "an integer"), Ok(None));
    }

    #[test]
    fn set_values_parse_with_trimming() {
        // Env mutation is process-global; this test owns its unique names.
        std::env::set_var("ASCEND_TEST_U64_KNOB", " 42 ");
        assert_eq!(parse_env::<u64>("ASCEND_TEST_U64_KNOB", "an integer"), Ok(Some(42)));
        std::env::set_var("ASCEND_TEST_F64_KNOB", "0.25");
        assert_eq!(parse_env::<f64>("ASCEND_TEST_F64_KNOB", "a fraction"), Ok(Some(0.25)));
    }

    #[test]
    fn malformed_values_error_loudly() {
        std::env::set_var("ASCEND_TEST_BAD_KNOB", "abc");
        let err = parse_env::<u64>("ASCEND_TEST_BAD_KNOB", "a shard count").unwrap_err();
        assert!(err.contains("ASCEND_TEST_BAD_KNOB"), "{err}");
        assert!(err.contains("abc"), "{err}");
        assert!(err.contains("a shard count"), "{err}");
    }
}
