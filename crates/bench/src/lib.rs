#![warn(missing_docs)]

//! Shared helpers for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation; see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured numbers. Binaries print their
//! rows to stdout and, when [`write_json`] is used, also drop a JSON
//! artifact under `target/experiments/`.

use ascend_arch::ChipSpec;
use ascend_ops::Operator;
use ascend_profile::{Profile, Profiler};
use ascend_roofline::{analyze, RooflineAnalysis, Thresholds};
use ascend_sim::Trace;
use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Simulates `op` on `chip` and returns its profile, trace, and analysis.
///
/// # Panics
///
/// Panics when the kernel fails to build or simulate — the experiment
/// binaries treat that as a fatal configuration error.
#[must_use]
pub fn run_op(chip: &ChipSpec, op: &dyn Operator) -> (Profile, Trace, RooflineAnalysis) {
    let kernel = op.build(chip).expect("operator must build");
    let (profile, trace) = Profiler::new(chip.clone()).run(&kernel).expect("kernel must run");
    let analysis = analyze(&profile, chip, &Thresholds::default());
    (profile, trace, analysis)
}

/// Cycles → microseconds on `chip`, for paper-style reporting.
#[must_use]
pub fn micros(chip: &ChipSpec, cycles: f64) -> f64 {
    chip.cycles_to_micros(cycles)
}

/// Writes `value` as pretty JSON to `target/experiments/<name>.json` and
/// returns the path. Errors are reported but not fatal (the printed rows
/// are the primary artifact).
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    if let Err(err) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {err}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(err) = fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {err}", path.display());
                return None;
            }
            println!("[artifact] {}", path.display());
            Some(path)
        }
        Err(err) => {
            eprintln!("warning: cannot serialize {name}: {err}");
            None
        }
    }
}

/// Writes raw text (e.g. an SVG) to `target/experiments/<name>` and
/// returns the path.
pub fn write_text(name: &str, contents: &str) -> Option<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    if let Err(err) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {err}", dir.display());
        return None;
    }
    let path = dir.join(name);
    if let Err(err) = fs::write(&path, contents) {
        eprintln!("warning: cannot write {}: {err}", path.display());
        return None;
    }
    println!("[artifact] {}", path.display());
    Some(path)
}

/// Prints a section header for an experiment binary.
pub fn header(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_ops::AddRelu;

    #[test]
    fn run_op_produces_consistent_artifacts() {
        let chip = ChipSpec::training();
        let (profile, trace, analysis) = run_op(&chip, &AddRelu::new(1 << 14));
        assert!((profile.total_cycles - trace.total_cycles()).abs() < 1e-9);
        assert!(!analysis.metrics().is_empty());
        assert!(micros(&chip, trace.total_cycles()) > 0.0);
    }

    #[test]
    fn write_json_emits_a_file() {
        let path = write_json("selftest", &serde_json::json!({"ok": true})).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("ok"));
    }
}
