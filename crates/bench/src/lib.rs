#![warn(missing_docs)]

//! Shared helpers for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation; see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured numbers. Binaries print their
//! rows to stdout and, when [`write_json`] is used, also drop a JSON
//! artifact under the experiments directory (`target/experiments/` by
//! default; override with the `ASCEND_EXPERIMENTS_DIR` environment
//! variable).
//!
//! All simulation goes through one process-wide [`AnalysisPipeline`] per
//! chip (see [`pipeline_for`]), so repeated measurements within a binary
//! are cache hits and every binary can print the pipeline's
//! instrumentation footer.

pub mod chaos;
pub mod env;

pub use chaos::run_chaos;
pub use env::{env_knob, parse_env};

use ascend_arch::ChipSpec;
use ascend_ops::Operator;
use ascend_pipeline::{AnalysisPipeline, AuditPolicy, BatchJournal, RunPolicy};
use ascend_profile::Profile;
use ascend_roofline::RooflineAnalysis;
use ascend_sim::{SimBudget, Trace};
use serde::Serialize;
use std::error::Error;
use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Process-wide pipelines, one per distinct chip spec.
static PIPELINES: OnceLock<Mutex<Vec<AnalysisPipeline>>> = OnceLock::new();

/// The process-wide [`AnalysisPipeline`] for `chip`. Clones share the
/// result cache and instrumentation counters, so every [`run_op`] in a
/// binary contributes to the same ledger.
///
/// The result-cache bound is tunable per run through the
/// `ASCEND_CACHE_CAPACITY` environment variable (entries, minimum 1;
/// unset: the pipeline default). Evictions under sustained traffic are
/// visible in the instrumentation footer's `evictions` counter.
///
/// Setting `ASCEND_CACHE_DIR` additionally attaches a durable
/// [`ResultStore`](ascend_pipeline::ResultStore) at
/// `<dir>/store-<context>.astr` (one file per pipeline context, so
/// different chips in one directory never collide): repeat runs of the
/// same binary answer from disk instead of re-simulating, and the
/// footer grows a `store:` line with hit/recovered/corrupt counters. An
/// unopenable store warns and runs memory-only.
///
/// Setting `ASCEND_AUDIT_RATE` (a fraction in 0..=1) enables the online
/// divergence-audit tier in inline mode at that sampling rate: sampled
/// results are shadow re-executed on the reference oracle before they
/// are served, a divergent result is quarantined and re-answered by the
/// oracle, and the footer grows an `audit:` line. `0` disables auditing
/// explicitly.
///
/// Malformed knob values are fatal (see [`env_knob`]): a typo exits
/// with status 2 instead of silently running with the default.
#[must_use]
pub fn pipeline_for(chip: &ChipSpec) -> AnalysisPipeline {
    let registry = PIPELINES.get_or_init(|| Mutex::new(Vec::new()));
    let mut pipelines = lock(registry);
    if let Some(found) = pipelines.iter().find(|p| p.chip() == chip) {
        return found.clone();
    }
    let mut pipeline = AnalysisPipeline::new(chip.clone());
    if let Some(capacity) = env_u64("ASCEND_CACHE_CAPACITY") {
        pipeline = pipeline.with_cache_capacity(usize::try_from(capacity).unwrap_or(usize::MAX));
    }
    if let Some(dir) = std::env::var_os("ASCEND_CACHE_DIR") {
        let path = PathBuf::from(dir).join(format!("store-{:016x}.astr", pipeline.context()));
        match pipeline.clone().with_store(&path) {
            Ok(with_store) => {
                pipeline = with_store;
                let recovered = pipeline.store_stats().map_or(0, |s| s.recovered);
                if recovered > 0 {
                    println!("[store] {}: recovered {recovered} entr(ies)", path.display());
                }
            }
            Err(err) => {
                eprintln!("warning: cannot open result store {}: {err}", path.display());
            }
        }
    }
    if let Some(policy) = audit_policy_from_env() {
        pipeline = pipeline.with_audit(policy);
    }
    pipelines.push(pipeline.clone());
    pipeline
}

/// The audit policy selected by `ASCEND_AUDIT_RATE` (a sampling
/// fraction in 0..=1): `None` when the variable is unset or zero; a
/// malformed value is fatal. [`pipeline_for`] attaches it inline; the serve
/// binary passes it to [`ServiceConfig::audit`] for deferred slack-time
/// auditing instead.
///
/// [`ServiceConfig::audit`]: ascend_pipeline::ServiceConfig
#[must_use]
pub fn audit_policy_from_env() -> Option<AuditPolicy> {
    let rate = env_f64("ASCEND_AUDIT_RATE")?;
    (rate > 0.0).then(|| AuditPolicy::default().with_rate(rate))
}

/// The supervision policy the experiment binaries run under:
/// [`RunPolicy::resilient`] (bounded retries, circuit breaker,
/// analytical fallback), tunable per run through the environment:
///
/// * `ASCEND_ITEM_DEADLINE_MS` — per-attempt wall-clock deadline in
///   milliseconds (unset: no deadline);
/// * `ASCEND_ITEM_MAX_EVENTS` — per-attempt watchdog event budget
///   (unset: the simulator default);
/// * `ASCEND_RETRIES` — retry count (default 2);
/// * `ASCEND_NO_FALLBACK` — set (to anything) to fail hard instead of
///   degrading to the analytical estimate.
#[must_use]
pub fn run_policy() -> RunPolicy {
    let mut policy = RunPolicy::resilient();
    if let Some(ms) = env_u64("ASCEND_ITEM_DEADLINE_MS") {
        policy = policy.with_deadline(Duration::from_millis(ms));
    }
    if let Some(max_events) = env_u64("ASCEND_ITEM_MAX_EVENTS") {
        policy = policy.with_budget(SimBudget { max_events, max_cycles: f64::INFINITY });
    }
    if let Some(retries) = env_u64("ASCEND_RETRIES") {
        policy = policy.with_retries(u32::try_from(retries).unwrap_or(u32::MAX));
    }
    if std::env::var_os("ASCEND_NO_FALLBACK").is_some() {
        policy = policy.with_fallback(false);
    }
    policy
}

fn env_u64(name: &str) -> Option<u64> {
    env_knob(name, "an unsigned integer")
}

fn env_f64(name: &str) -> Option<f64> {
    env_knob(name, "a number")
}

/// Simulates `op` on `chip` and returns its profile, trace, and analysis.
///
/// Routed through [`pipeline_for`] under [`run_policy`], so re-running
/// the same operator and flags is a cache hit, transient failures are
/// retried, and (unless `ASCEND_NO_FALLBACK` is set) a persistently
/// failing item degrades to the analytical estimate instead of aborting
/// the figure.
///
/// # Panics
///
/// Panics when the item fails permanently (invalid kernel, broken chip
/// spec, or fallback disabled) — the experiment binaries treat that as a
/// fatal configuration error. The panic message carries the full error
/// chain (including deadlock forensics and watchdog budgets), not just
/// the top-level variant.
#[must_use]
pub fn run_op(chip: &ChipSpec, op: &dyn Operator) -> (Profile, Trace, RooflineAnalysis) {
    let result = pipeline_for(chip)
        .run_supervised(op, &run_policy())
        .unwrap_or_else(|err| panic!("operator {:?} failed:\n{}", op.name(), error_chain(&err)));
    (result.profile.clone(), result.trace.clone(), result.analysis.clone())
}

/// Renders `err` followed by its full [`Error::source`] chain, one
/// `caused by:` line per level — so a deadlock buried under a pipeline
/// error still prints its per-queue forensics.
#[must_use]
pub fn error_chain(err: &dyn Error) -> String {
    let mut out = err.to_string();
    let mut cause = err.source();
    while let Some(err) = cause {
        out.push_str("\ncaused by: ");
        out.push_str(&err.to_string());
        cause = err.source();
    }
    out
}

/// Locks `mutex`, tolerating poisoning: the registry holds plain data
/// that stays consistent even if a holder panicked.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Cycles → microseconds on `chip`, for paper-style reporting.
#[must_use]
pub fn micros(chip: &ChipSpec, cycles: f64) -> f64 {
    chip.cycles_to_micros(cycles)
}

/// The directory experiment artifacts are written to:
/// `$ASCEND_EXPERIMENTS_DIR` when set, `target/experiments/` at the
/// workspace root otherwise.
#[must_use]
pub fn experiments_dir() -> PathBuf {
    std::env::var_os("ASCEND_EXPERIMENTS_DIR").map_or_else(
        || PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments"),
        PathBuf::from,
    )
}

/// Opens (or resumes) the write-ahead journal for a named batch sweep:
/// `<experiments_dir>/<name>.journal.jsonl`. Pass it to
/// [`AnalysisPipeline::run_batch_resumable`] so a killed sweep picks up
/// where it left off instead of re-simulating finished items. Errors
/// are reported but not fatal (the sweep still runs, just without
/// resumability), matching the artifact writers below.
#[must_use]
pub fn batch_journal(name: &str) -> Option<BatchJournal> {
    let path = experiments_dir().join(format!("{name}.journal.jsonl"));
    match BatchJournal::open(&path) {
        Ok(journal) => {
            let recovery = journal.recovery();
            if recovery.recovered > 0 || recovery.dropped > 0 {
                println!(
                    "[journal] {}: resumed {} item(s), dropped {} damaged line(s)",
                    path.display(),
                    recovery.recovered,
                    recovery.dropped
                );
            }
            Some(journal)
        }
        Err(err) => {
            eprintln!("warning: cannot open journal {}: {err}", path.display());
            None
        }
    }
}

/// Writes `contents` to `<experiments_dir>/<name>`, creating the
/// directory as needed. Errors are reported but not fatal (the printed
/// rows are the primary artifact).
fn write_artifact(name: &str, contents: &str) -> Option<PathBuf> {
    let dir = experiments_dir();
    if let Err(err) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {err}", dir.display());
        return None;
    }
    let path = dir.join(name);
    if let Err(err) = fs::write(&path, contents) {
        eprintln!("warning: cannot write {}: {err}", path.display());
        return None;
    }
    println!("[artifact] {}", path.display());
    Some(path)
}

/// Writes `value` as pretty JSON to `<experiments_dir>/<name>.json` and
/// returns the path.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    match serde_json::to_string_pretty(value) {
        Ok(json) => write_artifact(&format!("{name}.json"), &json),
        Err(err) => {
            eprintln!("warning: cannot serialize {name}: {err}");
            None
        }
    }
}

/// Writes raw text (e.g. an SVG) to `<experiments_dir>/<name>` and
/// returns the path.
pub fn write_text(name: &str, contents: &str) -> Option<PathBuf> {
    write_artifact(name, contents)
}

/// Prints a section header for an experiment binary.
pub fn header(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_ops::AddRelu;

    #[test]
    fn run_op_produces_consistent_artifacts() {
        let chip = ChipSpec::training();
        let (profile, trace, analysis) = run_op(&chip, &AddRelu::new(1 << 14));
        assert!((profile.total_cycles - trace.total_cycles()).abs() < 1e-9);
        assert!(!analysis.metrics().is_empty());
        assert!(micros(&chip, trace.total_cycles()) > 0.0);
    }

    #[test]
    fn repeated_run_op_hits_the_shared_pipeline_cache() {
        let chip = ChipSpec::training();
        let first = run_op(&chip, &AddRelu::new(1 << 10));
        let again = run_op(&chip, &AddRelu::new(1 << 10));
        assert_eq!(first.2, again.2);
        assert!(pipeline_for(&chip).cache_stats().hits >= 1);
    }

    #[test]
    fn error_chain_renders_every_level() {
        use ascend_pipeline::PipelineError;
        use ascend_sim::SimError;
        let err = PipelineError::from(SimError::BudgetExceeded {
            events: 10,
            cycles: 5.0,
            max_events: 8,
            max_cycles: 1e6,
        });
        let chain = error_chain(&err);
        assert!(chain.contains("simulation failed"), "{chain}");
        assert!(chain.contains("caused by: watchdog budget exceeded"), "{chain}");
    }

    #[test]
    fn batch_journal_lives_under_the_experiments_dir() {
        let journal = batch_journal("selftest_batch").expect("journal opens");
        assert!(journal.path().starts_with(experiments_dir()));
        assert!(journal.path().ends_with("selftest_batch.journal.jsonl"));
        // Journaling a supervised result round-trips through the file.
        let chip = ChipSpec::training();
        let pipeline = pipeline_for(&chip);
        let op = AddRelu::new(1 << 9);
        let results = pipeline.run_batch_resumable(
            &[&op as &dyn ascend_ops::Operator],
            &run_policy(),
            &journal,
        );
        assert!(results[0].is_ok());
        assert_eq!(ascend_pipeline::BatchJournal::open(journal.path()).unwrap().len(), 1);
        let _ = std::fs::remove_file(journal.path());
    }

    #[test]
    fn write_json_emits_a_file() {
        let path = write_json("selftest", &serde_json::json!({"ok": true})).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("ok"));
    }
}
