//! Operator-fusion ablation (Section 5.4): FlashAttention-style fused
//! attention vs. the naive pipeline that materializes the seq x seq score
//! matrix, across sequence lengths.

use ascend_arch::{ChipSpec, Component};
use ascend_bench::{header, write_json};
use ascend_isa::KernelStats;
use ascend_ops::{Attention, Operator, OptFlags};
use ascend_sim::Simulator;
use serde_json::json;

fn main() {
    let chip = ChipSpec::training();
    header("Attention fusion", "FlashAttention-style OP ablation");
    let sim = Simulator::new(chip.clone());
    println!(
        "{:>6} {:>14} {:>14} {:>9} {:>18}",
        "seq", "unfused (cy)", "fused (cy)", "speedup", "GM bytes saved"
    );
    let mut rows = Vec::new();
    for seq in [512u64, 1024, 2048, 4096] {
        let unfused = Attention::new(seq, 64).build(&chip).unwrap();
        let fused =
            Attention::new(seq, 64).with_flags(OptFlags::new().fused(true)).build(&chip).unwrap();
        let t0 = sim.simulate(&unfused).unwrap().total_cycles();
        let t1 = sim.simulate(&fused).unwrap().total_cycles();
        let b0 = KernelStats::of(&unfused).bytes_of_component(Component::MteGm)
            + KernelStats::of(&unfused).bytes_of_component(Component::MteUb);
        let b1 = KernelStats::of(&fused).bytes_of_component(Component::MteGm)
            + KernelStats::of(&fused).bytes_of_component(Component::MteUb);
        println!(
            "{seq:>6} {t0:>14.0} {t1:>14.0} {:>8.2}x {:>17.1}%",
            t0 / t1,
            (1.0 - b1 as f64 / b0 as f64) * 100.0
        );
        rows.push(json!({
            "seq": seq, "unfused_cycles": t0, "fused_cycles": t1,
            "speedup": t0 / t1, "bytes_saved_fraction": 1.0 - b1 as f64 / b0 as f64,
        }));
    }
    write_json("attention_fusion", &rows);
}
