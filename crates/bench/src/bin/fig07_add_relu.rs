//! Figure 7: the Add_ReLU roofline across the optimization iterations of
//! Section 5.1 (baseline -> +RSD -> +RSD+MRT).

use ascend_arch::{ChipSpec, Component};
use ascend_bench::{header, micros, run_op, write_json, write_text};
use ascend_ops::{AddRelu, OptFlags};
use ascend_roofline::RooflineChart;
use serde_json::json;

fn main() {
    let chip = ChipSpec::training();
    header("Figure 7", "Add_ReLU roofline across optimization iterations");
    let variants = [
        ("(a) baseline", OptFlags::new()),
        ("(b) +RSD", OptFlags::new().rsd(true)),
        ("(c) +RSD+MRT", OptFlags::new().rsd(true).mrt(true)),
    ];
    let mut rows = Vec::new();
    let mut base_cycles = 0.0;
    for (label, flags) in variants {
        let op = AddRelu::new(1 << 20).with_flags(flags);
        let (_, trace, analysis) = run_op(&chip, &op);
        if base_cycles == 0.0 {
            base_cycles = trace.total_cycles();
        }
        let busiest = analysis.busiest_component().unwrap();
        println!("\n--- {label}: {:.3} us ---", micros(&chip, trace.total_cycles()));
        println!("{}", analysis.summary());
        let chart = RooflineChart::from_analysis(&analysis);
        println!("{}", chart.to_ascii(84, 18));
        write_text(&format!("fig07{}.svg", &label[1..2]), &chart.to_svg(800, 500));
        rows.push(json!({
            "iteration": label,
            "micros": micros(&chip, trace.total_cycles()),
            "peak_utilization": analysis.peak_utilization(),
            "bottleneck": format!("{}", analysis.bottleneck()),
            "busiest_component": busiest.component.name(),
            "busiest_time_ratio": busiest.time_ratio,
            "mte_ub_time_ratio": analysis.metrics_of(Component::MteUb).map(|m| m.time_ratio),
        }));
    }
    let last = rows.last().unwrap();
    println!(
        "\noverall speedup {:.2}x (paper: 98.673 us -> 57.157 us = 1.72x)",
        base_cycles / (last["micros"].as_f64().unwrap() * chip.frequency_hz / 1e6)
    );
    write_json("fig07", &rows);
}
