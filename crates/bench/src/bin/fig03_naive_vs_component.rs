//! Figure 3: the naive roofline's misdiagnoses vs. the component model.
//!
//! Reconstructs both incorrect-analysis cases of Section 2.3 — the
//! MTE-contention case (3a) and the mixed-precision case (3b) — and shows
//! the component-based model recovering 100% utilization for both.

use ascend_arch::{ChipSpec, Component, ComputeUnit, MteEngine, Precision, TransferPath};
use ascend_bench::{header, write_json};
use ascend_profile::Profile;
use ascend_roofline::{ideal_compute_rate, ideal_mte_rate, naive};
use serde_json::json;

fn main() {
    let chip = ChipSpec::training();
    header("Figure 3", "naive roofline misdiagnoses vs. the component-based model");
    println!("naive combinations on this chip: {}", naive::combination_count());

    // --- Figure 3a: A (2x bytes) and B stream through MTE-GM back to back.
    let bw_a = chip.transfer(TransferPath::GmToL0A).unwrap().bytes_per_cycle;
    let bw_b = chip.transfer(TransferPath::GmToL0B).unwrap().bytes_per_cycle;
    let t_total = 3_000_000.0;
    let bytes_a = (bw_a * (2.0 / 3.0) * t_total) as u64;
    let bytes_b = (bw_b * (1.0 / 3.0) * t_total) as u64;
    let mut p = Profile::empty("fig3a");
    p.total_cycles = t_total;
    p.bytes.insert(TransferPath::GmToL0A, bytes_a);
    p.bytes.insert(TransferPath::GmToL0B, bytes_b);
    p.active_cycles.insert(Component::MteGm, t_total);
    let naive_a = naive::transfer_utilization(&p, &chip, TransferPath::GmToL0A).unwrap();
    let naive_b = naive::transfer_utilization(&p, &chip, TransferPath::GmToL0B).unwrap();
    let ideal = ideal_mte_rate(&chip, &p, MteEngine::Gm).unwrap();
    let component_util = (bytes_a + bytes_b) as f64 / t_total / ideal;
    println!("\nFigure 3a (MTE-GM saturated by A and B, A = 2x bytes of B):");
    println!(
        "  naive:      gm->l0a {:.1}%   gm->l0b {:.1}%   (misdiagnosed as underutilized)",
        naive_a * 100.0,
        naive_b * 100.0
    );
    println!(
        "  component:  mte-gm  {:.1}%   (correctly identified as the bound)",
        component_util * 100.0
    );

    // --- Figure 3b: equal FP16/INT8 op counts on a saturated Cube.
    let p16 = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Fp16).unwrap();
    let p8 = chip.peak_ops_per_cycle(ComputeUnit::Cube, Precision::Int8).unwrap();
    let ops: u64 = 1 << 24;
    let t = ops as f64 / p16 + ops as f64 / p8;
    let mut q = Profile::empty("fig3b");
    q.total_cycles = t;
    q.ops.insert((ComputeUnit::Cube, Precision::Fp16), ops);
    q.ops.insert((ComputeUnit::Cube, Precision::Int8), ops);
    q.active_cycles.insert(Component::Cube, t);
    let naive_fp16 =
        naive::precision_utilization(&q, &chip, ComputeUnit::Cube, Precision::Fp16).unwrap();
    let naive_int8 =
        naive::precision_utilization(&q, &chip, ComputeUnit::Cube, Precision::Int8).unwrap();
    let ideal_cube = ideal_compute_rate(&chip, &q, ComputeUnit::Cube).unwrap();
    let actual = (2 * ops) as f64 / t;
    println!("\nFigure 3b (Cube saturated by equal FP16 and INT8 operand counts):");
    println!(
        "  naive:      fp16 {:.1}%   int8 {:.1}%   (misdiagnosed as underutilized)",
        naive_fp16 * 100.0,
        naive_int8 * 100.0
    );
    println!(
        "  component:  cube {:.1}%   at {:.2} ops/cy = 2/3 of the INT8 peak",
        actual / ideal_cube * 100.0,
        actual
    );

    write_json(
        "fig03",
        &json!({
            "naive_combinations": naive::combination_count(),
            "fig3a": {"naive_l0a": naive_a, "naive_l0b": naive_b, "component": component_util},
            "fig3b": {"naive_fp16": naive_fp16, "naive_int8": naive_int8,
                       "component": actual / ideal_cube, "actual_vs_int8_peak": actual / p8},
        }),
    );
}
