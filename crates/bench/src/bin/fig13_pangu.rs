//! Figure 13 / Section 6.2.1: the PanGu-alpha 100B end-to-end study —
//! bottleneck-cause distribution and iteration time before and after the
//! optimization campaign.

use ascend_arch::ChipSpec;
use ascend_bench::{header, run_policy, write_json};
use ascend_models::{zoo, ModelRunner};
use serde_json::json;

fn main() {
    let chip = ChipSpec::training();
    header("Figure 13", "PanGu-alpha training: analysis and optimization");
    let runner = ModelRunner::new(chip.clone()).with_policy(run_policy());
    let result = runner.optimize(&zoo::pangu_alpha()).unwrap();

    println!("\nFigure 13a — bottleneck causes (time-weighted):");
    println!("  before: {}", result.before.distribution().summary());
    println!("          (paper: IP 61.48% | MB 34.02% | CB 4.50%, 90.3% of MB on MTE-GM)");
    println!("  after:  {}", result.after.distribution().summary());
    println!("          (paper: IP 40.10% | MB 53.45%)");

    let comp_before = result.before.computation_seconds(&chip);
    let comp_after = result.after.computation_seconds(&chip);
    let iter_before = chip.cycles_to_secs(result.before.iteration_cycles());
    let iter_after =
        chip.cycles_to_secs(result.after.total_cycles + result.before.overhead_cycles());
    println!("\nFigure 13b — execution time per iteration (simulated seconds):");
    println!(
        "  computation: {comp_before:.4} s -> {comp_after:.4} s ({:.2}x; paper 72.31 -> 25.16 s)",
        result.computation_speedup()
    );
    println!(
        "  iteration:   {iter_before:.4} s -> {iter_after:.4} s ({:.2}x; paper 98.01 -> 48.16 s)",
        result.overall_speedup()
    );

    println!("\nper-operator walkthroughs:");
    for report in &result.op_optimizations {
        if report.speedup() > 1.01 {
            println!("{}", report.summary());
        }
    }
    println!("\nbefore, per operator:\n{}", result.before.summary());
    println!("after, per operator:\n{}", result.after.summary());

    write_json(
        "fig13",
        &json!({
            "before_distribution": result.before.distribution(),
            "after_distribution": result.after.distribution(),
            "computation_speedup": result.computation_speedup(),
            "overall_speedup": result.overall_speedup(),
            "paper": {"computation_speedup": 72.31 / 25.16, "overall_speedup": 98.01 / 48.16,
                       "before": {"IP": 0.6148, "MB": 0.3402, "CB": 0.0450},
                       "after": {"IP": 0.4010, "MB": 0.5345}},
        }),
    );

    println!("\n{}", runner.pipeline().instrumentation_footer());
}
