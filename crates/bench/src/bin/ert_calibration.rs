//! ERT-style calibration table: achieved vs. specified ceilings for every
//! MTE path and precision-compute unit, on both chips — the empirical
//! ceilings a roofline practitioner would measure before analysis
//! (cf. the Empirical Roofline Toolkit, the paper's Section 2.3).

use ascend_arch::ChipSpec;
use ascend_bench::{header, write_json};
use ascend_profile::calibration::calibrate;
use serde_json::json;

fn main() {
    header("ERT calibration", "achieved vs. specified ceilings");
    let mut rows = Vec::new();
    for chip in [ChipSpec::training(), ChipSpec::inference()] {
        println!("\n{}:", chip.name());
        println!(
            "{:<16} {:>12} {:>12} {:>10} {:>8}",
            "target", "granularity", "achieved", "peak", "frac"
        );
        for point in calibrate(&chip).unwrap() {
            println!(
                "{:<16} {:>12} {:>12.2} {:>10.2} {:>7.1}%",
                point.target,
                point.granularity,
                point.achieved,
                point.peak,
                point.fraction() * 100.0
            );
            rows.push(json!({
                "chip": chip.name(),
                "target": point.target,
                "granularity": point.granularity,
                "achieved": point.achieved,
                "peak": point.peak,
            }));
        }
    }
    write_json("ert_calibration", &rows);
}
