//! Sections 5.1-5.3: the three operator case studies, end to end, with
//! every iteration's diagnosis and the applied strategy.

use ascend_arch::{ChipSpec, Component};
use ascend_bench::{error_chain, header, micros, run_op, write_json};
use ascend_ops::{AddRelu, AvgPool, Depthwise, Operator, OptFlags};
use ascend_optimize::Optimizer;
use ascend_sim::Simulator;
use serde_json::json;
use std::error::Error;

fn walk(
    chip: &ChipSpec,
    label: &str,
    steps: &[(&str, Box<dyn Operator>)],
) -> Vec<serde_json::Value> {
    println!("\n=== {label} ===");
    let mut rows = Vec::new();
    let mut first = 0.0;
    for (step, op) in steps {
        let (_, trace, analysis) = run_op(chip, op.as_ref());
        if first == 0.0 {
            first = trace.total_cycles();
        }
        println!(
            "  {:<16} {:>9.3} us  peak U {:>5.1}%  {}",
            step,
            micros(chip, trace.total_cycles()),
            analysis.peak_utilization() * 100.0,
            analysis.bottleneck()
        );
        rows.push(json!({
            "step": step,
            "micros": micros(chip, trace.total_cycles()),
            "peak_utilization": analysis.peak_utilization(),
            "bottleneck": format!("{}", analysis.bottleneck()),
            "speedup_so_far": first / trace.total_cycles(),
        }));
    }
    rows
}

fn run() -> Result<(), Box<dyn Error>> {
    let training = ChipSpec::training();
    let inference = ChipSpec::inference();
    header("Sections 5.1-5.3", "operator optimization case studies");

    const N: u64 = 1 << 20;
    let add_relu = walk(
        &training,
        "Add_ReLU (paper: 98.673 -> 57.157 us, 1.72x)",
        &[
            ("baseline", Box::new(AddRelu::new(N))),
            ("+RSD", Box::new(AddRelu::new(N).with_flags(OptFlags::new().rsd(true)))),
            ("+MRT", Box::new(AddRelu::new(N).with_flags(OptFlags::new().rsd(true).mrt(true)))),
        ],
    );

    let depthwise = walk(
        &training,
        "Depthwise (paper: 408.101 -> 325.121 us, 1.26x)",
        &[
            ("baseline", Box::new(Depthwise::new(N))),
            ("+AIS", Box::new(Depthwise::new(N).with_flags(OptFlags::new().ais(true)))),
            ("+RUS", Box::new(Depthwise::new(N).with_flags(OptFlags::new().ais(true).rus(true)))),
            (
                "+PP",
                Box::new(
                    Depthwise::new(N).with_flags(OptFlags::new().ais(true).rus(true).pp(true)),
                ),
            ),
            (
                "+ITG+MRT",
                Box::new(
                    Depthwise::new(N).with_flags(
                        OptFlags::new().ais(true).rus(true).pp(true).itg(true).mrt(true),
                    ),
                ),
            ),
        ],
    );

    // Ping-pong's waiting-interval effect (paper: 14 -> 3 intervals).
    let sim = Simulator::new(training.clone());
    let before = sim.simulate(
        &Depthwise::new(N).with_flags(OptFlags::new().ais(true).rus(true)).build(&training)?,
    )?;
    let after = sim.simulate(
        &Depthwise::new(N)
            .with_flags(OptFlags::new().ais(true).rus(true).pp(true))
            .build(&training)?,
    )?;
    println!(
        "  ping-pong MTE-GM waiting intervals: {} -> {} (paper: 14 -> 3)",
        before.waiting_intervals(Component::MteGm, 10.0),
        after.waiting_intervals(Component::MteGm, 10.0)
    );

    let avgpool = walk(
        &inference,
        "AvgPool (paper: 69.821 -> 16.206 us, 4.31x)",
        &[
            ("baseline", Box::new(AvgPool::new(1 << 16))),
            ("+AIP", Box::new(AvgPool::new(1 << 16).with_flags(OptFlags::new().aip(true)))),
        ],
    );

    // The automated loop reproduces the same walks.
    println!("\n=== automated analyze-optimize loop ===");
    for report in [
        Optimizer::new(training.clone()).run(&AddRelu::new(N))?,
        Optimizer::new(training.clone()).run(&Depthwise::new(N))?,
        Optimizer::new(inference.clone()).run(&AvgPool::new(1 << 16))?,
    ] {
        println!("{}", report.summary());
    }

    write_json(
        "case_studies",
        &json!({
            "add_relu": add_relu,
            "depthwise": depthwise,
            "avgpool": avgpool,
        }),
    );
    Ok(())
}

fn main() {
    if let Err(err) = run() {
        eprintln!("case_studies failed:\n{}", error_chain(err.as_ref()));
        std::process::exit(1);
    }
}
