//! Section 6.2.2: the MobileNetV3 inference end-to-end study on the
//! inference chip — 155 operators, count-weighted bottleneck shares, and
//! total latency before/after optimization.

use ascend_arch::ChipSpec;
use ascend_bench::{header, run_policy, write_json};
use ascend_models::{zoo, ModelRunner, Phase};
use serde_json::json;

fn main() {
    let chip = ChipSpec::inference();
    header("Section 6.2.2", "MobileNetV3 inference optimization");
    let model = zoo::mobilenet_v3(Phase::Inference);
    println!("operators per inference: {} (paper: 155)", model.total_invocations());
    let runner = ModelRunner::new(chip.clone()).with_policy(run_policy());
    let result = runner.optimize(&model).unwrap();

    println!("\nbottleneck causes (operator-count weighted):");
    println!("  before: {}", result.before.distribution_by_count().summary());
    println!("          (paper: IP 73.55% | IM 15.48% | IC 6.45% | MB 4.52%)");
    println!("  after:  {}", result.after.distribution_by_count().summary());
    println!("          (paper: IP 61.94% | IM 28.39% | MB 5.16% | IC 4.52%)");

    let us_before = chip.cycles_to_micros(result.before.total_cycles);
    let us_after = chip.cycles_to_micros(result.after.total_cycles);
    println!("\ntotal computation: {us_before:.0} us -> {us_after:.0} us ({:.2}x; paper 8642 -> 7157 us = 1.21x)",
        result.computation_speedup());

    write_json(
        "case_mobilenet",
        &json!({
            "operators": model.total_invocations(),
            "before": result.before.distribution_by_count(),
            "after": result.after.distribution_by_count(),
            "micros_before": us_before,
            "micros_after": us_after,
            "computation_speedup": result.computation_speedup(),
            "paper": {"micros_before": 8642.0, "micros_after": 7157.0},
        }),
    );

    println!("\n{}", runner.pipeline().instrumentation_footer());
}
