//! BENCH_1: the canonical engine benchmark harness.
//!
//! Drives the hot-path event loop on the big kernels — the PanGu-α
//! operator stream, the fig13/fig14 training workloads, and the
//! Section 5 case-study kernels — and measures raw engine throughput
//! (events/sec, ns/event) for both the arena engine ([`Simulator`])
//! and the pre-refactor seed engine
//! ([`ReferenceSimulator`](ascend_sim::reference::ReferenceSimulator)),
//! in the same process with the same harness, so the reported speedup
//! is an honest apples-to-apples ratio.
//!
//! On top of the engine-only numbers, one pipeline section measures
//! end-to-end batch throughput (items/sec), the analysis cache's
//! hit-rate, and the pipeline's own engine throughput counters.
//!
//! The result is written as `BENCH_1.json` (schema `ascend-bench-v1`).
//! `--reduced` shrinks the workload set and the per-workload time
//! budget for CI smoke runs; `--baseline <path>` validates a committed
//! baseline's schema and warns (non-blocking) when the current run's
//! engine events/sec regresses by more than 20% on any shared workload.
//!
//! `bench store verify [--context HEX] PATH...` is the offline ops
//! subcommand: a read-only scan of one or more
//! [`ResultStore`](ascend_pipeline::ResultStore) segments reporting
//! torn bytes, digest-invalid records, quarantine tombstones, and
//! quarantine violations — exiting non-zero on any corruption (or, with
//! `--context`, on a foreign segment).

use ascend_arch::ChipSpec;
use ascend_bench::{error_chain, header, write_json};
use ascend_isa::Kernel;
use ascend_models::zoo;
use ascend_ops::{AddRelu, AvgPool, Depthwise, Operator, OptFlags};
use ascend_pipeline::{AnalysisPipeline, ResultStore};
use ascend_sim::reference::ReferenceSimulator;
use ascend_sim::{NullSink, Simulator};
use serde_json::{json, Value};
use std::error::Error;
use std::time::{Duration, Instant};

/// Regression threshold for `--baseline` comparisons: warn when the
/// current events/sec drops below 80% of the committed number.
const REGRESSION_FLOOR: f64 = 0.80;

struct Args {
    reduced: bool,
    baseline: Option<String>,
    budget_ms: Option<u64>,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args { reduced: false, baseline: None, budget_ms: None };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--reduced" => {
                    args.reduced = true;
                    i += 1;
                }
                "--baseline" if i + 1 < argv.len() => {
                    args.baseline = Some(argv[i + 1].clone());
                    i += 2;
                }
                "--budget-ms" if i + 1 < argv.len() => {
                    match argv[i + 1].parse::<u64>() {
                        Ok(v) if v > 0 => args.budget_ms = Some(v),
                        _ => usage_exit(&argv[i + 1]),
                    }
                    i += 2;
                }
                flag => usage_exit(flag),
            }
        }
        args
    }
}

fn usage_exit(flag: &str) -> ! {
    eprintln!("usage: bench [--reduced] [--baseline PATH] [--budget-ms MS]");
    eprintln!("       bench store verify [--context HEX] PATH...");
    eprintln!(
        "       bench chaos [--seeds N] [--seed HEX] [--duration-ms MS] [--shards N] \
         [--gap-bound-ms MS] [--canary] [--keep i,j,...]"
    );
    eprintln!("unrecognized or malformed: {flag}");
    std::process::exit(2);
}

/// `bench store verify`: read-only integrity scan of store segments.
/// Never opens the store for writing — safe on a live segment — and
/// reports what recovery *would* find, plus quarantine violations no
/// compliant writer produces.
fn store_verify(argv: &[String]) -> Result<(), Box<dyn Error>> {
    let mut expected_context: Option<u64> = None;
    let mut paths: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--context" if i + 1 < argv.len() => {
                let raw = argv[i + 1].trim_start_matches("0x");
                expected_context = Some(u64::from_str_radix(raw, 16).map_err(|_| {
                    format!("malformed --context {:?} (expected hex)", argv[i + 1])
                })?);
                i += 2;
            }
            flag if flag.starts_with('-') => usage_exit(flag),
            path => {
                paths.push(path);
                i += 1;
            }
        }
    }
    if paths.is_empty() {
        usage_exit("store verify needs at least one PATH");
    }
    header("store verify", "offline read-only result-store integrity scan");
    let mut failed = false;
    for path in paths {
        match ResultStore::verify(path) {
            Ok(report) => {
                println!("  {path}: {report}");
                if !report.is_clean() {
                    failed = true;
                }
                if let Some(expected) = expected_context {
                    if report.context != expected {
                        failed = true;
                        println!(
                            "  {path}: FOREIGN — segment context {:#018x} does not match \
                             expected {expected:#018x}",
                            report.context,
                        );
                    }
                }
            }
            Err(err) => {
                failed = true;
                println!("  {path}: REFUSED — {err}");
            }
        }
    }
    if failed {
        return Err("store verify found corruption or a foreign segment (see above)".into());
    }
    println!("  all segments clean");
    Ok(())
}

/// A named set of kernels the harness loops over as one unit.
struct Workload {
    name: String,
    kernels: Vec<Kernel>,
}

/// One engine's throughput over a workload.
struct Measured {
    passes: u64,
    events: u64,
    secs: f64,
}

impl Measured {
    fn events_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.events as f64 / self.secs
        } else {
            0.0
        }
    }

    fn ns_per_event(&self) -> f64 {
        if self.events > 0 {
            self.secs * 1e9 / self.events as f64
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Value {
        json!({
            "passes": self.passes,
            "events": self.events,
            "secs": self.secs,
            "events_per_sec": self.events_per_sec(),
            "ns_per_event": self.ns_per_event(),
        })
    }
}

/// Builds every kernel of a model's operator stream once. Kernel
/// construction happens here, outside any timed region: the harness
/// measures the event loop, not `KernelBuilder`.
fn model_kernels(
    chip: &ChipSpec,
    model: &ascend_models::ModelWorkload,
) -> Result<Vec<Kernel>, Box<dyn Error>> {
    let mut kernels = Vec::with_capacity(model.ops().len());
    for invocation in model.ops() {
        kernels.push(invocation.operator().build(chip)?);
    }
    Ok(kernels)
}

/// The Section 5 case-study kernels: each operator's baseline and its
/// fully optimized variant, so the loop exercises both sync-heavy and
/// streamlined instruction sequences.
fn case_study_kernels(chip: &ChipSpec, elements: u64) -> Result<Vec<Kernel>, Box<dyn Error>> {
    let ops: Vec<Box<dyn Operator>> = vec![
        Box::new(AddRelu::new(elements)),
        Box::new(AddRelu::new(elements).with_flags(OptFlags::new().rsd(true).mrt(true))),
        Box::new(Depthwise::new(elements)),
        Box::new(Depthwise::new(elements).with_flags(OptFlags::new().itg(true).ais(true))),
        Box::new(AvgPool::new(elements)),
        Box::new(AvgPool::new(elements).with_flags(OptFlags::new().aip(true).rus(true))),
    ];
    let mut kernels = Vec::with_capacity(ops.len());
    for op in &ops {
        kernels.push(op.build(chip)?);
    }
    Ok(kernels)
}

fn workloads(chip: &ChipSpec, reduced: bool) -> Result<Vec<Workload>, Box<dyn Error>> {
    let mut out = Vec::new();
    // The headline workload: the PanGu-α operator stream (Table 2's
    // largest model), always first so `--baseline` comparisons and the
    // acceptance ratio read from a stable name.
    out.push(Workload {
        name: "pangu_alpha".into(),
        kernels: model_kernels(chip, &zoo::pangu_alpha())?,
    });
    // fig13/fig14 coverage: the Table 2 training sweep.
    for model in zoo::all_training() {
        if model.name() == zoo::pangu_alpha().name() {
            continue; // already measured as the headline entry
        }
        if reduced && !matches!(model.name(), "ResNet50" | "BERT") {
            continue;
        }
        out.push(Workload {
            name: model.name().to_string(),
            kernels: model_kernels(chip, &model)?,
        });
    }
    // Section 5 case studies on production-sized tensors.
    let elements = if reduced { 1 << 16 } else { 1 << 20 };
    out.push(Workload {
        name: "case_studies".into(),
        kernels: case_study_kernels(chip, elements)?,
    });
    Ok(out)
}

/// Counts the events one pass over the workload processes. The event
/// count is a property of the kernels, not the engine — both engines
/// walk the identical schedule — so one count serves both timings.
fn events_per_pass(sim: &Simulator, kernels: &[Kernel]) -> Result<u64, Box<dyn Error>> {
    let mut events = 0;
    for kernel in kernels {
        let mut sink = NullSink;
        events += sim.simulate_unchecked_into(kernel, &mut sink)?.events;
    }
    Ok(events)
}

/// Loops whole passes over the workload until the time budget elapses
/// (at least one pass always runs), timing only the simulate calls.
fn drive<F>(kernels: &[Kernel], events_per_pass: u64, budget: Duration, mut run_pass: F) -> Measured
where
    F: FnMut(&[Kernel]),
{
    let start = Instant::now();
    let mut passes = 0u64;
    loop {
        run_pass(kernels);
        passes += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    Measured { passes, events: passes * events_per_pass, secs: start.elapsed().as_secs_f64() }
}

/// Measures the pipeline end to end: a cold batch (all misses) for
/// items/sec, then the identical batch again so the cache hit-rate and
/// the pipeline's own engine counters have something to say.
fn pipeline_section(chip: &ChipSpec, elements: u64) -> Value {
    let pipeline = AnalysisPipeline::new(chip.clone());
    let ops: Vec<Box<dyn Operator>> = vec![
        Box::new(AddRelu::new(elements)),
        Box::new(AddRelu::new(elements).with_flags(OptFlags::new().rsd(true))),
        Box::new(AddRelu::new(elements).with_flags(OptFlags::new().rsd(true).mrt(true))),
        Box::new(Depthwise::new(elements)),
        Box::new(Depthwise::new(elements).with_flags(OptFlags::new().itg(true))),
        Box::new(Depthwise::new(elements).with_flags(OptFlags::new().itg(true).ais(true))),
        Box::new(AvgPool::new(elements)),
        Box::new(AvgPool::new(elements).with_flags(OptFlags::new().aip(true))),
        Box::new(AvgPool::new(elements).with_flags(OptFlags::new().aip(true).rus(true))),
    ];
    let refs: Vec<&dyn Operator> = ops.iter().map(AsRef::as_ref).collect();

    let cold_start = Instant::now();
    let cold = pipeline.run_batch(&refs);
    let cold_secs = cold_start.elapsed().as_secs_f64();
    let cold_ok = cold.iter().filter(|r| r.is_ok()).count();

    let warm_start = Instant::now();
    let warm = pipeline.run_batch(&refs);
    let warm_secs = warm_start.elapsed().as_secs_f64();
    let warm_ok = warm.iter().filter(|r| r.is_ok()).count();

    let cache = pipeline.cache_stats();
    let engine = pipeline.engine_throughput();
    println!(
        "  batch: {cold_ok}/{} cold in {cold_secs:.3}s ({:.1} items/s), \
         {warm_ok} warm in {warm_secs:.3}s, cache hit-rate {:.1}%",
        refs.len(),
        cold_ok as f64 / cold_secs.max(1e-9),
        cache.hit_rate() * 100.0,
    );
    json!({
        "items": refs.len(),
        "cold_ok": cold_ok,
        "cold_secs": cold_secs,
        "items_per_sec": cold_ok as f64 / cold_secs.max(1e-9),
        "warm_ok": warm_ok,
        "warm_secs": warm_secs,
        "cache_hit_rate": cache.hit_rate(),
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "pipeline_engine": {
            "events": engine.events,
            "sim_secs": engine.sim_secs,
            "events_per_sec": engine.events_per_sec(),
            "ns_per_event": engine.ns_per_event(),
        },
    })
}

/// Structural validation of an `ascend-bench-v1` document. Returns every
/// violation rather than the first, so a broken artifact reads as one
/// actionable report.
fn validate_schema(doc: &Value) -> Vec<String> {
    let mut problems = Vec::new();
    if doc.get("schema").and_then(Value::as_str) != Some("ascend-bench-v1") {
        problems.push("schema: expected the string \"ascend-bench-v1\"".into());
    }
    if doc.get("mode").and_then(Value::as_str).is_none() {
        problems.push("mode: expected a string".into());
    }
    match doc.get("workloads").and_then(Value::as_array) {
        None => problems.push("workloads: expected an array".into()),
        Some(entries) if entries.is_empty() => {
            problems.push("workloads: expected at least one entry".into());
        }
        Some(entries) => {
            for (i, entry) in entries.iter().enumerate() {
                if entry.get("name").and_then(Value::as_str).is_none() {
                    problems.push(format!("workloads[{i}].name: expected a string"));
                }
                for engine in ["engine", "reference"] {
                    for field in ["events", "secs", "events_per_sec", "ns_per_event"] {
                        let ok = entry
                            .get(engine)
                            .and_then(|e| e.get(field))
                            .and_then(Value::as_f64)
                            .is_some_and(f64::is_finite);
                        if !ok {
                            problems.push(format!(
                                "workloads[{i}].{engine}.{field}: expected a finite number"
                            ));
                        }
                    }
                }
                if entry.get("speedup").and_then(Value::as_f64).is_none() {
                    problems.push(format!("workloads[{i}].speedup: expected a number"));
                }
            }
        }
    }
    for field in ["items_per_sec", "cache_hit_rate"] {
        if doc.get("batch").and_then(|b| b.get(field)).and_then(Value::as_f64).is_none() {
            problems.push(format!("batch.{field}: expected a number"));
        }
    }
    problems
}

/// Non-blocking baseline comparison: validates the committed file's
/// schema, then warns on any shared workload whose engine events/sec
/// fell below [`REGRESSION_FLOOR`] of the baseline. Returns `Err` only
/// for hard failures (unreadable file, broken schema).
fn check_baseline(path: &str, current: &Value) -> Result<(), Box<dyn Error>> {
    let text = std::fs::read_to_string(path)?;
    let baseline: Value = serde_json::from_str(&text)?;
    let problems = validate_schema(&baseline);
    if !problems.is_empty() {
        return Err(format!(
            "baseline {path} failed schema validation:\n  {}",
            problems.join("\n  ")
        )
        .into());
    }
    println!("  baseline {path}: schema ascend-bench-v1 OK");
    let rate_of = |doc: &Value, name: &str| -> Option<f64> {
        doc.get("workloads")?
            .as_array()?
            .iter()
            .find(|w| w.get("name").and_then(Value::as_str) == Some(name))?
            .get("engine")?
            .get("events_per_sec")?
            .as_f64()
    };
    let mut warned = false;
    for entry in current.get("workloads").and_then(Value::as_array).unwrap_or(&Vec::new()) {
        let Some(name) = entry.get("name").and_then(Value::as_str) else { continue };
        let (Some(now), Some(then)) = (rate_of(current, name), rate_of(&baseline, name)) else {
            continue;
        };
        if then > 0.0 && now < then * REGRESSION_FLOOR {
            warned = true;
            println!(
                "  warning: {name} engine throughput regressed {:.0}% \
                 ({now:.0} events/s now vs {then:.0} baseline) — non-blocking",
                (1.0 - now / then) * 100.0,
            );
        }
    }
    if !warned {
        println!("  baseline {path}: no workload regressed >20% events/s");
    }
    Ok(())
}

fn run() -> Result<(), Box<dyn Error>> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("store") {
        match argv.get(1).map(String::as_str) {
            Some("verify") => return store_verify(&argv[2..]),
            other => usage_exit(other.unwrap_or("store needs a subcommand (verify)")),
        }
    }
    if argv.first().map(String::as_str) == Some("chaos") {
        return ascend_bench::run_chaos(&argv[1..]);
    }
    let args = Args::parse();
    header("BENCH_1", "hot-path engine throughput: arena engine vs seed engine");

    let chip = ChipSpec::training();
    let budget =
        Duration::from_millis(args.budget_ms.unwrap_or(if args.reduced { 60 } else { 400 }));
    let simulator = Simulator::new(ChipSpec::training());
    let reference = ReferenceSimulator::new(ChipSpec::training());

    let mut rows = Vec::new();
    let mut pangu_speedup = 0.0;
    println!(
        "  {:<16} {:>9} {:>14} {:>14} {:>9}",
        "workload", "kernels", "arena ev/s", "seed ev/s", "speedup"
    );
    for workload in workloads(&chip, args.reduced)? {
        // The counting pass doubles as warmup: scratch arenas are
        // allocated and pooled before the clock starts.
        let per_pass = events_per_pass(&simulator, &workload.kernels)?;
        let engine = drive(&workload.kernels, per_pass, budget, |kernels| {
            for kernel in kernels {
                let mut sink = NullSink;
                simulator
                    .simulate_unchecked_into(kernel, &mut sink)
                    .expect("workload kernels simulate cleanly");
            }
        });
        let seed = drive(&workload.kernels, per_pass, budget, |kernels| {
            for kernel in kernels {
                reference.simulate_unchecked(kernel).expect("workload kernels simulate cleanly");
            }
        });
        let speedup = if seed.events_per_sec() > 0.0 {
            engine.events_per_sec() / seed.events_per_sec()
        } else {
            0.0
        };
        if workload.name == "pangu_alpha" {
            pangu_speedup = speedup;
        }
        println!(
            "  {:<16} {:>9} {:>14.0} {:>14.0} {:>8.2}x",
            workload.name,
            workload.kernels.len(),
            engine.events_per_sec(),
            seed.events_per_sec(),
            speedup,
        );
        rows.push(json!({
            "name": workload.name,
            "kernels": workload.kernels.len(),
            "events_per_pass": per_pass,
            "engine": engine.to_json(),
            "reference": seed.to_json(),
            "speedup": speedup,
        }));
    }

    println!();
    let batch = pipeline_section(&chip, if args.reduced { 1 << 14 } else { 1 << 18 });

    let doc = json!({
        "schema": "ascend-bench-v1",
        "mode": if args.reduced { "reduced" } else { "full" },
        "chip": "training",
        "budget_ms": budget.as_millis() as u64,
        "pangu_alpha_speedup": pangu_speedup,
        "workloads": rows,
        "batch": batch,
    });
    let problems = validate_schema(&doc);
    if !problems.is_empty() {
        return Err(format!(
            "generated document failed self-validation:\n  {}",
            problems.join("\n  ")
        )
        .into());
    }
    println!("\n  PanGu-alpha speedup vs seed engine: {pangu_speedup:.2}x");
    if let Some(path) = write_json("BENCH_1", &doc) {
        println!("  wrote {}", path.display());
    }
    if let Some(baseline) = &args.baseline {
        check_baseline(baseline, &doc)?;
    }
    Ok(())
}

fn main() {
    // `bench chaos` clusters re-exec this very binary as their shard
    // workers; in the ordinary invocation this is a no-op.
    ascend_pipeline::run_worker_if_requested();
    if let Err(err) = run() {
        eprintln!("bench failed: {}", error_chain(err.as_ref()));
        std::process::exit(1);
    }
}
