//! Figure 2 (background): the classic DRAM and hierarchical rooflines the
//! paper builds on, evaluated on the modeled chip's numbers, and the case
//! where they stop being informative for Ascend.

use ascend_arch::{ChipSpec, ComputeUnit, Precision, TransferPath};
use ascend_bench::{error_chain, header, write_json};
use ascend_roofline::classic::{
    DramRoofline, HierarchicalRoofline, HierarchyLevel, RooflineRegion,
};
use serde_json::json;
use std::error::Error;

fn run() -> Result<(), Box<dyn Error>> {
    let chip = ChipSpec::training();
    header("Figure 2", "classic roofline models (background)");

    // DRAM roofline from the chip's Cube FP16 peak and GM bandwidth.
    let peak_flops = chip.peak_ops_per_sec(ComputeUnit::Cube, Precision::Fp16)?;
    let gm_bw = chip.transfer(TransferPath::GmToL1)?.bytes_per_cycle * chip.frequency_hz;
    let dram = DramRoofline::new(peak_flops, gm_bw);
    println!(
        "\nDRAM roofline: peak {:.2} Tops/s, GM {:.1} GB/s, ridge at {:.1} ops/byte",
        peak_flops / 1e12,
        gm_bw / 1e9,
        dram.ridge_intensity()
    );
    let mut points = Vec::new();
    for ai in [0.5, 2.0, 8.0, 32.0, 128.0, 512.0] {
        let attainable = dram.attainable(ai);
        let region = match dram.classify(ai) {
            RooflineRegion::MemoryBound => "memory bound",
            RooflineRegion::ComputeBound => "compute bound",
        };
        println!("  AI {ai:>6.1}: attainable {:.2} Tops/s — {region}", attainable / 1e12);
        points.push(json!({"ai": ai, "attainable": attainable, "region": region}));
    }

    // Hierarchical roofline with the chip's memory levels.
    let l1_bw = chip.transfer(TransferPath::L1ToL0A)?.bytes_per_cycle * chip.frequency_hz;
    let ub_bw = chip.transfer(TransferPath::UbToGm)?.bytes_per_cycle * chip.frequency_hz;
    let hier = HierarchicalRoofline::new(vec![
        HierarchyLevel { name: "GM".into(), rate: gm_bw, arithmetic: false },
        HierarchyLevel { name: "L1".into(), rate: l1_bw, arithmetic: false },
        HierarchyLevel { name: "UB".into(), rate: ub_bw, arithmetic: false },
        HierarchyLevel { name: "Cube FP16".into(), rate: peak_flops, arithmetic: true },
        HierarchyLevel {
            name: "Cube INT8".into(),
            rate: chip.peak_ops_per_sec(ComputeUnit::Cube, Precision::Int8)?,
            arithmetic: true,
        },
    ]);
    println!("\nhierarchical roofline binding level by intensity:");
    for ai in [0.5, 8.0, 128.0, 4096.0] {
        let level =
            hier.binding_level(ai).ok_or("hierarchical roofline has no levels to bind against")?;
        println!("  AI {ai:>7.1}: bound by {}", level.name);
    }
    println!("\nWhat neither model can express (Section 2.3): the serial MTE");
    println!("contention of Figure 3a and the mixed-precision serialization of");
    println!("Figure 3b — run fig03_naive_vs_component for the component model's fix.");

    write_json("fig02", &json!({"dram_points": points, "ridge": dram.ridge_intensity()}));
    Ok(())
}

fn main() {
    if let Err(err) = run() {
        eprintln!("fig02_classic failed:\n{}", error_chain(err.as_ref()));
        std::process::exit(1);
    }
}
