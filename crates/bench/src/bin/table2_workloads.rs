//! Table 2: the workload specification of the model zoo.

use ascend_bench::{header, write_json};
use ascend_models::zoo;
use serde_json::json;

fn main() {
    header("Table 2", "workload specification");
    println!(
        "{:<16} {:>12} {:<24} {:>6} {:>10}",
        "model", "parameters", "dataset", "#NPUs", "ops/iter"
    );
    let mut rows = Vec::new();
    for model in zoo::all_training() {
        let params = if model.parameters_millions() >= 1000.0 {
            format!("{:.0}B", model.parameters_millions() / 1000.0)
        } else {
            format!("{}M", model.parameters_millions())
        };
        println!(
            "{:<16} {:>12} {:<24} {:>6} {:>10}",
            model.name(),
            params,
            model.dataset(),
            model.npus(),
            model.total_invocations()
        );
        rows.push(json!({
            "model": model.name(),
            "parameters_millions": model.parameters_millions(),
            "dataset": model.dataset(),
            "npus": model.npus(),
            "invocations_per_iteration": model.total_invocations(),
        }));
    }
    write_json("table2", &rows);
}
