//! Figure 6: the component-based roofline chart for a mixed operator.
//!
//! Builds the pruned chart (≤ 7 performance points) for a MatMul+Add-like
//! kernel, renders it as ASCII, and writes an SVG artifact.

use ascend_arch::ChipSpec;
use ascend_bench::{header, run_op, write_text};
use ascend_ops::{MatMulAdd, OptFlags};
use ascend_roofline::{pruning, RooflineChart};

fn main() {
    let chip = ChipSpec::training();
    header("Figure 6", "component-based roofline (pruned to at most 7 points)");
    println!(
        "pruning chain: {} naive -> {} component pairs -> {} after pruning\n",
        pruning::naive_combinations(),
        pruning::component_combinations(),
        pruning::pruned_pairs().len()
    );
    let op = MatMulAdd::new(512, 512, 512).with_flags(OptFlags::new().fused(true).pp(true));
    let (_, _, analysis) = run_op(&chip, &op);
    println!("{}", analysis.summary());
    let chart = RooflineChart::from_analysis(&analysis);
    println!("{}", chart.to_ascii(96, 24));
    for point in chart.points() {
        println!(
            "point ({}, {}): AI {:.3} ops/byte, {:.1} ops/cy, utilization {:.1}%",
            point.compute,
            point.memory,
            point.intensity,
            point.performance,
            point.utilization * 100.0
        );
    }
    write_text("fig06_roofline.svg", &chart.to_svg(900, 600));
}
