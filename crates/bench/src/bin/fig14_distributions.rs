//! Figure 14: bottleneck-cause distributions (a) across the trained
//! models, (b) across programming frameworks, and (c) training vs.
//! inference deployments.

use ascend_arch::ChipSpec;
use ascend_bench::{header, run_policy, write_json};
use ascend_models::{convert_for_framework, zoo, Framework, ModelRunner, Phase};
use serde_json::json;

fn main() {
    header("Figure 14", "distribution of performance impediments");
    let training_runner = ModelRunner::new(ChipSpec::training()).with_policy(run_policy());
    let inference_runner = ModelRunner::new(ChipSpec::inference()).with_policy(run_policy());

    println!("\nFigure 14a — training bottleneck causes across models (time-weighted):");
    let mut fig_a = Vec::new();
    for model in zoo::all_training() {
        let report = training_runner.analyze(&model).unwrap();
        let distribution = report.distribution();
        println!("  {:<16} {}", model.name(), distribution.summary());
        fig_a.push(json!({"model": model.name(), "distribution": distribution}));
    }
    println!("  (paper: small models dominated by IP; Llama2/PanGu prone to MTE-GM bound)");

    println!("\nFigure 14b — MobileNetV3 inference across framework frontends:");
    let mut fig_b = Vec::new();
    let m3 = zoo::mobilenet_v3(Phase::Inference);
    for framework in Framework::ALL {
        let converted = convert_for_framework(&m3, framework);
        let report = inference_runner.analyze(&converted).unwrap();
        let distribution = report.distribution_by_count();
        println!("  {:<12} {}", framework.name(), distribution.summary());
        fig_b.push(json!({"framework": framework.name(), "distribution": distribution}));
    }
    println!("  (paper: the frontend barely matters — same operator library underneath)");

    println!("\nFigure 14c — training vs. inference (GPT2, MobileNetV3, ResNet50, VGG16):");
    let mut fig_c = Vec::new();
    let pairs = [
        (zoo::gpt2(Phase::Training), zoo::gpt2(Phase::Inference)),
        (zoo::mobilenet_v3(Phase::Training), zoo::mobilenet_v3(Phase::Inference)),
        (zoo::resnet50(Phase::Training), zoo::resnet50(Phase::Inference)),
        (zoo::vgg16(Phase::Training), zoo::vgg16(Phase::Inference)),
    ];
    for (train, infer) in pairs {
        let t = training_runner.analyze(&train).unwrap().distribution();
        let i = inference_runner.analyze(&infer).unwrap().distribution();
        println!("  {:<16} train: {}", train.name(), t.summary());
        println!("  {:<16} infer: {}", "", i.summary());
        fig_c.push(json!({"model": train.name(), "training": t, "inference": i}));
    }

    write_json("fig14", &json!({"a": fig_a, "b": fig_b, "c": fig_c}));

    println!("\ntraining pipeline:\n{}", training_runner.pipeline().instrumentation_footer());
    println!("inference pipeline:\n{}", inference_runner.pipeline().instrumentation_footer());
}
