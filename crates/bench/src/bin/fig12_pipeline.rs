//! Figure 12: the instruction-queue view behind Adjusting Instruction
//! Sequence — the dispatch delay between consecutive MTE-GM transfers in
//! the Depthwise operator, before and after AIS, with the simulator's
//! per-instruction stall attribution. Also writes Chrome/Perfetto traces.

use ascend_arch::{ChipSpec, Component};
use ascend_bench::{header, write_json, write_text};
use ascend_ops::{Depthwise, Operator, OptFlags};
use ascend_sim::{Simulator, StallCause};
use serde_json::json;

fn gm_gaps(trace: &ascend_sim::Trace) -> Vec<f64> {
    let records = trace.records_of(Component::MteGm);
    records.windows(2).map(|p| (p[1].start - p[0].end).max(0.0)).collect()
}

fn main() {
    let chip = ChipSpec::training();
    header("Figure 12", "adjusting instruction sequence: MTE-GM queue timeline");
    let sim = Simulator::new(chip);
    let mut rows = Vec::new();
    for (label, flags) in [("baseline", OptFlags::new()), ("+AIS", OptFlags::new().ais(true))] {
        let op = Depthwise::new(1 << 19).with_flags(flags);
        let kernel = op.build(sim.chip()).unwrap();
        let trace = sim.simulate(&kernel).unwrap();
        let gaps = gm_gaps(&trace);
        let mean_gap = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
        let max_gap = gaps.iter().copied().fold(0.0, f64::max);
        println!("\n{label}: {:.0} cycles total", trace.total_cycles());
        println!("  MTE-GM inter-transfer gaps: mean {mean_gap:.0}, max {max_gap:.0} cycles");
        for cause in [StallCause::QueueBusy, StallCause::Flag, StallCause::Region] {
            println!(
                "  MTE-GM stall on {:<7} {:>9.0} cycles",
                cause.label(),
                trace.stall_cycles(Component::MteGm, cause).max(0.0)
            );
        }
        println!("{}", trace.gantt_ascii(88));
        let labels: Vec<String> = kernel.iter().map(ToString::to_string).collect();
        write_text(
            &format!("fig12_{}.trace.json", label.trim_start_matches('+')),
            &trace.to_chrome_trace(Some(&labels)),
        );
        rows.push(json!({
            "variant": label,
            "total_cycles": trace.total_cycles(),
            "mean_gm_gap": mean_gap,
            "max_gm_gap": max_gap,
            "gm_region_stall": trace.stall_cycles(Component::MteGm, StallCause::Region),
            "gm_flag_stall": trace.stall_cycles(Component::MteGm, StallCause::Flag),
        }));
    }
    write_json("fig12", &rows);
}
