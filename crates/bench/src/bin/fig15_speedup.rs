//! Figure 15: computation and overall speedups from the optimization
//! campaign across all eleven training workloads.

use ascend_arch::ChipSpec;
use ascend_bench::{error_chain, header, run_policy, write_json};
use ascend_models::{zoo, ModelRunner};
use serde_json::json;
use std::error::Error;

fn run() -> Result<(), Box<dyn Error>> {
    header(
        "Figure 15",
        "time speedup with optimization (paper: computation 1.08-2.70x, overall 1.07-2.15x)",
    );
    let runner = ModelRunner::new(ChipSpec::training()).with_policy(run_policy());
    println!("{:<16} {:>12} {:>10}", "model", "computation", "overall");
    let mut rows = Vec::new();
    let mut comp_range = (f64::INFINITY, 0.0f64);
    let mut overall_range = (f64::INFINITY, 0.0f64);
    for model in zoo::all_training() {
        let result = runner.optimize(&model)?;
        let comp = result.computation_speedup();
        let overall = result.overall_speedup();
        comp_range = (comp_range.0.min(comp), comp_range.1.max(comp));
        overall_range = (overall_range.0.min(overall), overall_range.1.max(overall));
        println!("{:<16} {:>11.2}x {:>9.2}x", model.name(), comp, overall);
        rows.push(json!({
            "model": model.name(),
            "computation_speedup": comp,
            "overall_speedup": overall,
        }));
    }
    println!(
        "\nmeasured ranges: computation {:.2}-{:.2}x, overall {:.2}-{:.2}x",
        comp_range.0, comp_range.1, overall_range.0, overall_range.1
    );
    write_json("fig15", &rows);
    Ok(())
}

fn main() {
    if let Err(err) = run() {
        eprintln!("fig15_speedup failed:\n{}", error_chain(err.as_ref()));
        std::process::exit(1);
    }
}
