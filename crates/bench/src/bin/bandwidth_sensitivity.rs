//! Next-generation chip study: the paper closes Section 6.2.1 observing
//! that 47% of optimized PanGu-alpha operators are GM->UB bound, "which is
//! difficult to alleviate through software optimizations... emphasizing
//! the need of next-generation chips". This sweep scales MTE-GM bandwidth
//! and watches the bottleneck distribution and iteration time respond.

use ascend_arch::{ChipSpec, MteEngine};
use ascend_bench::{header, run_policy, write_json};
use ascend_models::{zoo, ModelRunner};
use serde_json::json;

fn main() {
    header("Chip sensitivity", "PanGu-alpha vs. MTE-GM bandwidth (next-gen chip study)");
    let mut rows = Vec::new();
    println!("{:>6} {:>16} {:>8} {:>8}  distribution", "GM bw", "cycles/iter", "vs 1.0x", "MB");
    let mut reference = 0.0;
    for factor in [0.5, 1.0, 2.0, 4.0] {
        let chip = ChipSpec::training().with_mte_bandwidth_scale(MteEngine::Gm, factor);
        let runner = ModelRunner::new(chip).with_policy(run_policy());
        let report = runner.analyze(&zoo::pangu_alpha()).unwrap();
        if factor == 1.0 {
            reference = report.total_cycles;
        }
        let d = report.distribution();
        println!(
            "{:>5.1}x {:>16.0} {:>7.2}x {:>7.1}%  {}",
            factor,
            report.total_cycles,
            if reference > 0.0 { reference / report.total_cycles } else { f64::NAN },
            d.share("MB") * 100.0,
            d.summary()
        );
        rows.push(json!({
            "gm_bandwidth_scale": factor,
            "total_cycles": report.total_cycles,
            "distribution": d,
        }));
    }
    println!("\nDoubling GM bandwidth directly buys LLM iteration time — the");
    println!("software-unreachable headroom the paper attributes to future chips.");
    write_json("bandwidth_sensitivity", &rows);
}
