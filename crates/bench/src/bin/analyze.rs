//! Command-line operator analyzer: build any library operator with any
//! flag combination, simulate it, and print (or save) the roofline report.
//!
//! ```text
//! cargo run -p ascend-bench --bin analyze -- add_relu --rsd --mrt
//! cargo run -p ascend-bench --bin analyze -- depthwise --chip inference
//! cargo run -p ascend-bench --bin analyze -- matmul --tt --report out.md
//! cargo run -p ascend-bench --bin analyze -- --kernel my_kernel.txt
//! cargo run -p ascend-bench --bin analyze -- --list
//! ```

use ascend_arch::ChipSpec;
use ascend_bench::write_text;
use ascend_ops::{
    AddRelu, Attention, AvgPool, Cast, Conv2d, Depthwise, Dropout, Elementwise, EltwiseKind,
    Embedding, FullyConnection, Gelu, LayerNorm, MatMul, MatMulAdd, Operator, OptFlags, ReduceSum,
    Softmax, TransData,
};
use ascend_optimize::advise;
use ascend_profile::Profiler;
use ascend_roofline::{analyze, report, Thresholds};

const OPERATORS: &[&str] = &[
    "add_relu",
    "attention",
    "avgpool",
    "cast",
    "conv2d",
    "depthwise",
    "dropout",
    "embedding",
    "fully_connection",
    "gelu",
    "layernorm",
    "matmul",
    "matmul_add",
    "mul",
    "add",
    "realdiv",
    "reduce_sum",
    "softmax",
    "transdata",
];

fn make_operator(name: &str) -> Option<Box<dyn Operator>> {
    const E: u64 = 1 << 19;
    Some(match name {
        "add_relu" => Box::new(AddRelu::new(E)),
        "attention" => Box::new(Attention::new(1024, 64)),
        "avgpool" => Box::new(AvgPool::new(E / 8)),
        "cast" => Box::new(Cast::new(E)),
        "conv2d" => Box::new(Conv2d::new(E / 2, 288)),
        "depthwise" => Box::new(Depthwise::new(E)),
        "dropout" => Box::new(Dropout::new(E)),
        "embedding" => Box::new(Embedding::new(1 << 16, 64, 4096)),
        "fully_connection" => Box::new(FullyConnection::new(32, 256, 1024)),
        "gelu" => Box::new(Gelu::new(E)),
        "layernorm" => Box::new(LayerNorm::new(E)),
        "matmul" => Box::new(MatMul::new(512, 512, 512)),
        "matmul_add" => Box::new(MatMulAdd::new(512, 512, 512)),
        "mul" => Box::new(Elementwise::new(EltwiseKind::Mul, E)),
        "add" => Box::new(Elementwise::new(EltwiseKind::Add, E)),
        "realdiv" => Box::new(Elementwise::new(EltwiseKind::RealDiv, E)),
        "reduce_sum" => Box::new(ReduceSum::new(E, 1024)),
        "softmax" => Box::new(Softmax::new(E)),
        "transdata" => Box::new(TransData::new(E)),
        _ => return None,
    })
}

fn apply_flag(flags: OptFlags, name: &str) -> Option<OptFlags> {
    Some(match name {
        "rsd" => flags.rsd(true),
        "mrt" => flags.mrt(true),
        "ais" => flags.ais(true),
        "rus" => flags.rus(true),
        "pp" => flags.pp(true),
        "itg" => flags.itg(true),
        "aip" => flags.aip(true),
        "fused" | "op" => flags.fused(true),
        "tt" => flags.tt(true),
        "ea" => flags.ea(true),
        "lc" => flags.lc(true),
        "ct" => flags.ct(true),
        "all" => OptFlags::all(),
        _ => return None,
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: analyze <operator> [--<flag>...] [--chip training|inference] [--report <file>]"
    );
    eprintln!("       analyze --kernel <file> [--chip ...] [--report <file>]");
    eprintln!("       analyze --list");
    eprintln!("flags: rsd mrt ais rus pp itg aip fused tt ea lc ct all");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for op in OPERATORS {
            println!("{op}");
        }
        return;
    }
    // Textual kernel mode: analyze a hand-written kernel file.
    let mut kernel_file: Option<String> = None;
    let (base, mut i): (Option<Box<dyn Operator>>, usize) =
        if args.first().map(String::as_str) == Some("--kernel") {
            kernel_file = args.get(1).cloned();
            if kernel_file.is_none() {
                usage();
            }
            (None, 2)
        } else {
            let Some(op_name) = args.first() else { usage() };
            let Some(op) = make_operator(op_name) else {
                eprintln!("unknown operator `{op_name}` (try --list)");
                std::process::exit(2);
            };
            (Some(op), 1)
        };
    let mut flags = OptFlags::new();
    let mut chip = ChipSpec::training();
    let mut report_file: Option<String> = None;
    while i < args.len() {
        let arg = args[i].trim_start_matches("--");
        match arg {
            "chip" => {
                i += 1;
                chip = match args.get(i).map(String::as_str) {
                    Some("training") => ChipSpec::training(),
                    Some("inference") => ChipSpec::inference(),
                    other => {
                        eprintln!("unknown chip {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "report" => {
                i += 1;
                report_file = args.get(i).cloned();
                if report_file.is_none() {
                    usage();
                }
            }
            flag => match apply_flag(flags, flag) {
                Some(updated) => flags = updated,
                None => {
                    eprintln!("unknown flag `--{flag}`");
                    usage();
                }
            },
        }
        i += 1;
    }

    let kernel = match (&base, &kernel_file) {
        (Some(op), _) => op.with_flags_dyn(flags).build(&chip).unwrap_or_else(|e| {
            eprintln!("operator does not build for this chip:\n{}", ascend_bench::error_chain(&e));
            std::process::exit(2);
        }),
        (None, Some(file)) => {
            let source = std::fs::read_to_string(file).unwrap_or_else(|e| {
                eprintln!("cannot read {file}: {e}");
                std::process::exit(2);
            });
            let kernel = ascend_isa::parse_kernel(&source).unwrap_or_else(|e| {
                eprintln!("{file}: {e}");
                std::process::exit(2);
            });
            ascend_isa::validate(&kernel, &chip).unwrap_or_else(|e| {
                eprintln!("{file}: {e}");
                std::process::exit(2);
            });
            kernel
        }
        (None, None) => usage(),
    };
    let (profile, trace) = Profiler::new(chip.clone()).run(&kernel).unwrap_or_else(|e| {
        eprintln!("{}: simulation failed:\n{}", kernel.name(), ascend_bench::error_chain(&e));
        std::process::exit(2);
    });
    let analysis = analyze(&profile, &chip, &Thresholds::default());
    println!(
        "{}: {:.0} cycles = {:.3} us on {}",
        kernel.name(),
        trace.total_cycles(),
        chip.cycles_to_micros(trace.total_cycles()),
        chip.name()
    );
    println!("{}", analysis.summary());
    let suggestions = advise(&analysis);
    if suggestions.is_empty() {
        println!("advisor: nothing to suggest");
    } else {
        let names: Vec<&str> = suggestions.iter().map(|s| s.abbrev()).collect();
        println!("advisor suggests: {}", names.join(", "));
    }
    if let Some(file) = report_file {
        let md = report::to_markdown(&analysis, &profile, &chip);
        write_text(&file, &md);
    }
}
