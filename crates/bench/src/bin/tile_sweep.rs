//! Tile-size ablation: the parameter-configuration sweep behind the
//! paper's "suboptimal parameter configurations" impediment, run with the
//! autotuner over representative operators.

use ascend_arch::ChipSpec;
use ascend_bench::{header, write_json};
use ascend_ops::{AddRelu, AvgPool, Elementwise, EltwiseKind, Gelu, Operator, OptFlags};
use ascend_optimize::autotune::tune;
use serde_json::json;

type MakeOp = Box<dyn Fn(u64) -> Box<dyn Operator>>;

fn main() {
    let chip = ChipSpec::training();
    header("Tile sweep", "tile-size autotuning across operators");
    let candidates: Vec<u64> = (8..=17).map(|p| 1u64 << p).collect();
    let cases: Vec<(&str, MakeOp)> = vec![
        (
            "add_relu+rsd+mrt",
            Box::new(|tile| {
                Box::new(
                    AddRelu::new(1 << 19)
                        .with_flags(OptFlags::new().rsd(true).mrt(true))
                        .with_tile(tile),
                )
            }),
        ),
        (
            "mul",
            Box::new(|tile| Box::new(Elementwise::new(EltwiseKind::Mul, 1 << 19).with_tile(tile))),
        ),
        (
            "avgpool+aip",
            Box::new(|tile| {
                Box::new(
                    AvgPool::new(1 << 15).with_flags(OptFlags::new().aip(true)).with_tile(tile),
                )
            }),
        ),
        ("gelu", Box::new(|_tile| Box::new(Gelu::new(1 << 19)))),
    ];
    let mut rows = Vec::new();
    for (name, make) in &cases {
        let result = tune(&chip, &candidates, make).unwrap();
        println!(
            "\n{name}: best tile {} at {:.0} cycles (spread {:.2}x)",
            result.best_value,
            result.best_cycles,
            result.spread()
        );
        for trial in &result.trials {
            match trial.cycles {
                Some(cycles) => println!("  tile {:>7}: {:>10.0} cycles", trial.value, cycles),
                None => println!("  tile {:>7}: infeasible", trial.value),
            }
        }
        rows.push(json!({"operator": name, "best": result.best_value, "trials": result.trials}));
    }
    write_json("tile_sweep", &rows);
}
