//! Table 1: per-operator bottleneck classes, the optimizations the
//! advisor-driven loop applies, and the resulting speedups, for the
//! MobileNetV3 operators.

use ascend_arch::ChipSpec;
use ascend_bench::{header, write_json};
use ascend_ops::{
    AddRelu, AvgPool, Conv2d, Depthwise, Elementwise, EltwiseKind, FullyConnection, Gelu,
    MatMulAdd, Operator,
};
use ascend_optimize::Optimizer;
use serde_json::json;

fn main() {
    let chip = ChipSpec::inference();
    header("Table 1", "optimization and speedup of MobileNetV3 operators");
    const E: u64 = 1 << 17;
    let paper: &[(&str, f64)] = &[
        ("add_relu", 1.72),
        ("depthwise", 1.26),
        ("avgpool", 4.31),
        ("mul", 1.34),
        ("conv2d", 2.65),
        ("fully_connection", 1.22),
        ("matmul", 1.10),
        ("gelu", 1.06),
    ];
    let ops: Vec<Box<dyn Operator>> = vec![
        Box::new(AddRelu::new(E)),
        Box::new(Depthwise::new(E)),
        Box::new(AvgPool::new(E / 8)),
        Box::new(Elementwise::new(EltwiseKind::Mul, E)),
        Box::new(Conv2d::new(E, 288)),
        Box::new(FullyConnection::new(32, 256, 1024)),
        Box::new(MatMulAdd::new(256, 256, 256)),
        Box::new(Gelu::new(E)),
    ];
    let optimizer = Optimizer::new(chip);
    println!(
        "{:<22} {:<28} {:<22} {:>8} {:>8}",
        "operator", "initial bottleneck", "applied", "speedup", "paper"
    );
    let mut rows = Vec::new();
    for (op, (paper_name, paper_speedup)) in ops.iter().zip(paper) {
        let report = optimizer.run(op.as_ref()).unwrap();
        let applied: Vec<String> =
            report.applied_strategies().iter().map(|s| s.abbrev().to_owned()).collect();
        let initial = format!("{}", report.iterations[0].bottleneck);
        println!(
            "{:<22} {:<28} {:<22} {:>7.2}x {:>7.2}x",
            paper_name,
            initial,
            applied.join(","),
            report.speedup(),
            paper_speedup
        );
        rows.push(json!({
            "operator": paper_name,
            "initial_bottleneck": initial,
            "applied": applied,
            "speedup": report.speedup(),
            "paper_speedup": paper_speedup,
        }));
    }
    write_json("table1", &rows);
}
