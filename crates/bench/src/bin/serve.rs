//! Resident-service demo: replay a seeded open-loop load against an
//! [`AnalysisService`] and report its health under pressure.
//!
//! ```text
//! cargo run -p ascend-bench --bin serve
//! cargo run -p ascend-bench --bin serve -- --rate 400 --duration-ms 500
//! cargo run -p ascend-bench --bin serve -- --workers 1 --queue 4 --chaos 0.2
//! cargo run -p ascend-bench --bin serve -- --sandboxed --chaos 0.1
//! ```
//!
//! Arrivals come from a deterministic [`LoadProfile`] (Poisson with a
//! periodic burst), so the same seed replays the same traffic byte for
//! byte. A `--chaos` fraction of requests is wrapped in a
//! [`FaultedOperator`] whose kernel mutations exercise the failure path
//! without ever poisoning the clean cache entries. The binary prints the
//! final [`HealthSnapshot`], the pipeline instrumentation footer, and
//! writes `serve_health.json` under the experiments directory.
//!
//! With `--sandboxed`, every class runs [`Isolation::Sandboxed`]: the
//! traffic becomes operator *specs* served by supervised child
//! processes (this binary re-exec'd as a worker), and the chaos
//! fraction becomes the fault library's hostile modes — worker kills
//! instead of kernel corruption.
//!
//! Set `ASCEND_CACHE_DIR` to attach a durable result store (see
//! `ascend_bench::pipeline_for`): a restarted serve answers repeat
//! traffic from disk, and the `store` block of `serve_health.json`
//! reports recovered/hit/corrupt-dropped counters.
//!
//! Set `ASCEND_AUDIT_RATE` to enable the online divergence-audit tier
//! in deferred mode: that fraction of simulated results is shadow
//! re-executed on the reference oracle whenever a worker finds the
//! queue empty, divergent fingerprints are quarantined, and the `audit`
//! block of `serve_health.json` (plus an `audit:` footer line) reports
//! audits/divergences/quarantined/demotion.
//!
//! With `--cluster N` (or `ASCEND_CLUSTER_SHARDS=N`), the traffic is
//! served by a [`ClusterService`] of N shard processes behind the
//! consistent-hash router instead of a single resident service. The
//! chaos fraction becomes seeded `kill -9`s of shards mid-load (a
//! [`KillPlan`]), `ASCEND_CACHE_DIR` gives every shard its own durable
//! store segment, and `serve_health.json` (and the footer) carry a
//! `cluster` block: per-shard counters, respawns, failovers, and the
//! ring generation.

use ascend_arch::ChipSpec;
use ascend_bench::{audit_policy_from_env, header, pipeline_for, run_policy, write_json};
use ascend_faults::{FaultPlan, FaultedOperator, HostileMode, KillPlan, LoadProfile};
use ascend_ops::{AddRelu, Elementwise, EltwiseKind, LayerNorm, OpSpec, Operator, Softmax};
use ascend_pipeline::{
    AnalysisService, ClusterConfig, ClusterService, Isolation, PipelineError, Priority, Request,
    SandboxConfig, ServiceConfig, Ticket, WorkSpec,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Args {
    seed: u64,
    rate_hz: f64,
    duration: Duration,
    workers: usize,
    queue: usize,
    chaos: f64,
    sandboxed: bool,
    cluster: Option<usize>,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            seed: 0x00A5_CE4D,
            rate_hz: 300.0,
            duration: Duration::from_millis(400),
            workers: 2,
            queue: 16,
            chaos: 0.1,
            sandboxed: false,
            cluster: ascend_bench::env_knob::<usize>(
                "ASCEND_CLUSTER_SHARDS",
                "a shard count (integer >= 1)",
            )
            .filter(|&n| n >= 1),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            if argv[i] == "--sandboxed" {
                args.sandboxed = true;
                i += 1;
                continue;
            }
            let value = argv.get(i + 1).map(String::as_str);
            let parsed = value.and_then(|v| v.parse::<f64>().ok());
            match (argv[i].as_str(), parsed) {
                ("--seed", Some(v)) => args.seed = v as u64,
                ("--rate", Some(v)) if v > 0.0 => args.rate_hz = v,
                ("--duration-ms", Some(v)) => args.duration = Duration::from_millis(v as u64),
                ("--workers", Some(v)) if v >= 1.0 => args.workers = v as usize,
                ("--queue", Some(v)) if v >= 1.0 => args.queue = v as usize,
                ("--chaos", Some(v)) => args.chaos = v.clamp(0.0, 1.0),
                ("--cluster", Some(v)) if v >= 1.0 => args.cluster = Some(v as usize),
                (flag, _) => {
                    eprintln!("usage: serve [--seed N] [--rate HZ] [--duration-ms MS]");
                    eprintln!("             [--workers N] [--queue N] [--chaos FRACTION]");
                    eprintln!("             [--sandboxed] [--cluster N]");
                    eprintln!("unrecognized or malformed: {flag}");
                    std::process::exit(2);
                }
            }
            i += 2;
        }
        args
    }
}

/// Derives a distinct small operator from one arrival's random draw, so
/// the traffic is a mix of shapes rather than one cache entry.
fn operator_for(draw: u64, chaos: f64) -> Box<dyn Operator> {
    let elements = 1 << (10 + draw % 5);
    let inner: Box<dyn Operator> = match (draw >> 8) % 4 {
        0 => Box::new(AddRelu::new(elements)),
        1 => Box::new(Softmax::new(elements)),
        2 => Box::new(LayerNorm::new(elements)),
        _ => Box::new(Elementwise::new(EltwiseKind::Mul, elements)),
    };
    // The low byte of the draw decides chaos membership deterministically.
    if chaos > 0.0 && ((draw & 0xFF) as f64) < chaos * 256.0 {
        Box::new(FaultedOperator::new(inner, FaultPlan::new(draw).truncate_to(3)))
    } else {
        inner
    }
}

/// The sandboxed tier's counterpart of [`operator_for`]: the same draw
/// becomes a serializable spec, and chaos membership becomes a hostile
/// mode drawn from the fast-failing ones (the spin would otherwise
/// serialize the run behind its wall clock).
fn spec_for(draw: u64, chaos: f64) -> WorkSpec {
    if chaos > 0.0 && ((draw & 0xFF) as f64) < chaos * 256.0 {
        let mode = match (draw >> 8) % 4 {
            0 => HostileMode::Abort,
            1 => HostileMode::Mute,
            2 => HostileMode::GarbageStdout,
            _ => HostileMode::TruncateFrame,
        };
        return WorkSpec::hostile(mode);
    }
    clean_spec_for(draw)
}

/// The always-clean spec for one draw — cluster mode's traffic, where
/// chaos arrives as shard SIGKILLs rather than hostile payloads.
fn clean_spec_for(draw: u64) -> WorkSpec {
    let elements = 1 << (10 + draw % 5);
    WorkSpec::from(match (draw >> 8) % 4 {
        0 => OpSpec::add_relu(elements),
        1 => OpSpec::softmax(elements),
        2 => OpSpec::layer_norm(elements),
        _ => OpSpec::gelu(elements),
    })
}

/// `serve_health.json` in cluster mode: the satellite `cluster` block.
#[derive(serde::Serialize)]
struct ClusterServeReport {
    cluster: ascend_pipeline::ClusterHealth,
    rejected: u64,
}

/// The `--cluster N` path: the same seeded open-loop load served by a
/// sharded [`ClusterService`] instead of one resident service. The
/// chaos fraction sets the intensity of a seeded [`KillPlan`] whose
/// `kill -9`s land between arrivals, so the run doubles as a failover
/// demo: the printed cluster block reports kills, failovers, respawns,
/// and the ring generation, and the same block lands in
/// `serve_health.json`.
fn run_cluster(args: &Args, shards: usize) {
    let chip = ChipSpec::training();
    let cluster = ClusterService::start(
        chip,
        ClusterConfig {
            shards,
            queue_capacity: args.queue,
            default_deadline: Some(Duration::from_secs(2)),
            max_failovers: 4,
            respawn_backoff: Duration::from_millis(10),
            respawn_backoff_max: Duration::from_millis(250),
            seed: args.seed,
            store_dir: std::env::var_os("ASCEND_CACHE_DIR").map(PathBuf::from),
            sandbox: SandboxConfig {
                heartbeat_timeout: Duration::from_millis(300),
                wall_clock_limit: Duration::from_secs(2),
                ..SandboxConfig::default()
            },
            ..ClusterConfig::default()
        },
    )
    .unwrap_or_else(|err| {
        eprintln!("cluster start failed: {err}");
        std::process::exit(1);
    });

    let profile = LoadProfile::new(args.seed, args.rate_hz, args.duration).with_burst(
        args.duration / 4,
        args.duration / 8,
        4.0,
    );
    let arrivals = profile.schedule();
    // Chaos intensity becomes kill frequency: at the default 10% the
    // window sees roughly one SIGKILL; at 100% roughly eight.
    let kill_events = if args.chaos > 0.0 {
        KillPlan::new(
            args.seed ^ 0x4B49_4C4C,
            shards,
            args.duration.div_f64((args.chaos * 8.0).max(0.5)),
            args.duration,
        )
        .schedule()
    } else {
        Vec::new()
    };
    println!(
        "load: {} arrivals over {:?} (mean {} Hz, 4x burst every {:?}); cluster: {} shards, \
         {} scheduled kills (chaos {:.0}%)",
        arrivals.len(),
        args.duration,
        args.rate_hz,
        args.duration / 4,
        shards,
        kill_events.len(),
        args.chaos * 100.0
    );

    let start = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::new();
    let mut rejected = 0u64;
    let mut kills_landed = 0u64;
    let mut next_kill = 0usize;
    for arrival in &arrivals {
        while next_kill < kill_events.len() && kill_events[next_kill].at <= arrival.at {
            let target = kill_events[next_kill].shard;
            if cluster.kill_shard(target) {
                kills_landed += 1;
                println!(
                    "[{:6.1} ms] kill -9 shard {target}",
                    kill_events[next_kill].at.as_secs_f64() * 1e3
                );
            }
            next_kill += 1;
        }
        if let Some(wait) = arrival.at.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let priority = if arrival.interactive { Priority::Interactive } else { Priority::Sweep };
        match cluster.submit(clean_spec_for(arrival.draw), priority) {
            Ok(ticket) => tickets.push(ticket),
            Err(PipelineError::Overloaded { .. }) => rejected += 1,
            Err(err) => {
                eprintln!("submit failed: {err}");
                std::process::exit(1);
            }
        }
    }

    let drain = cluster.drain(Duration::from_secs(30));
    let health = cluster.health();
    println!(
        "admission: {} accepted, {} rejected (open-loop, no client retry)",
        health.counters.accepted, rejected
    );
    println!(
        "outcomes: {} ok, {} failed, {} shed, {} flushed at drain",
        health.counters.completed_ok,
        health.counters.failed,
        health.counters.shed_deadline,
        health.counters.drain_flushed
    );
    println!(
        "cluster: {} failovers, {} kills ({} landed live), {} respawns, {} cache hits, \
         ring generation {}",
        health.counters.failovers,
        health.counters.kills,
        kills_landed,
        health.counters.respawns,
        health.counters.cache_hits,
        health.ring_generation
    );
    for shard in &health.shards {
        println!(
            "  shard {}: {} ok, {} failed, {} cache hits, {} kills, {} respawns, {} rewarmed",
            shard.index,
            shard.counters.completed_ok,
            shard.counters.failed,
            shard.counters.cache_hits,
            shard.counters.kills,
            shard.counters.respawns,
            shard.counters.store_recovered
        );
    }
    println!(
        "drain: flushed {} queued, quiesced: {}, elapsed {:.1} ms",
        drain.flushed_queued,
        drain.quiesced,
        drain.elapsed.as_secs_f64() * 1e3
    );
    assert!(drain.quiesced, "drain must quiesce within its deadline");
    assert_eq!(
        health.counters.terminal_states(),
        health.counters.accepted,
        "every accepted ticket must reach exactly one terminal state"
    );
    let settled = tickets.iter().filter(|t| t.try_result().is_some()).count();
    assert_eq!(settled, tickets.len(), "every held ticket must be settled after drain");

    write_json("serve_health", &ClusterServeReport { cluster: health, rejected });
}

fn main() {
    // When re-executed as a sandbox worker this serves jobs and never
    // returns; in the ordinary invocation it is a no-op.
    ascend_pipeline::run_worker_if_requested();
    let args = Args::parse();
    header("serve", "resident analysis service under seeded open-loop load");
    if let Some(shards) = args.cluster {
        return run_cluster(&args, shards);
    }
    let chip = ChipSpec::training();
    let config = ServiceConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        policy: run_policy(),
        default_deadline: Some(Duration::from_secs(2)),
        seed: args.seed,
        isolation: if args.sandboxed {
            [Isolation::Sandboxed; 2]
        } else {
            [Isolation::InProcess; 2]
        },
        sandbox: SandboxConfig {
            heartbeat_timeout: Duration::from_millis(300),
            wall_clock_limit: Duration::from_secs(2),
            ..SandboxConfig::default()
        },
        audit: audit_policy_from_env(),
        ..ServiceConfig::default()
    };
    let service = AnalysisService::start(pipeline_for(&chip), config);

    let profile = LoadProfile::new(args.seed, args.rate_hz, args.duration).with_burst(
        args.duration / 4,
        args.duration / 8,
        4.0,
    );
    let schedule = profile.schedule();
    println!(
        "load: {} arrivals over {:?} (mean {} Hz, 4x burst every {:?}), chaos {:.0}%",
        schedule.len(),
        args.duration,
        args.rate_hz,
        args.duration / 4,
        args.chaos * 100.0
    );

    let start = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::new();
    let mut rejected = 0u64;
    for arrival in &schedule {
        if let Some(wait) = arrival.at.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let request = if args.sandboxed {
            let priority =
                if arrival.interactive { Priority::Interactive } else { Priority::Sweep };
            Request::from_spec(spec_for(arrival.draw, args.chaos), priority)
        } else {
            let op = operator_for(arrival.draw, args.chaos);
            if arrival.interactive {
                Request::interactive(op)
            } else {
                Request::sweep(op)
            }
        };
        match service.submit(request) {
            Ok(ticket) => tickets.push(ticket),
            Err(PipelineError::Overloaded { .. }) => rejected += 1,
            Err(err) => {
                eprintln!("submit failed: {err}");
                std::process::exit(1);
            }
        }
    }

    let drain = service.drain(Duration::from_secs(30));
    let health = service.health();
    println!(
        "admission: {} accepted, {} rejected (open-loop, no client retry)",
        health.counters.accepted, rejected
    );
    println!(
        "outcomes: {} ok, {} failed, {} shed, {} flushed at drain",
        health.counters.completed_ok,
        health.counters.failed,
        health.counters.shed_deadline,
        health.counters.drain_flushed
    );
    println!("latency ms p50/p95/p99: interactive {} | sweep {}", health.interactive, health.sweep);
    println!(
        "cache: {:.1}% hit rate ({} hits / {} misses); fidelity: {} simulated, {} analytical, \
         {} audited",
        health.cache.hit_rate() * 100.0,
        health.cache.hits,
        health.cache.misses,
        health.fidelity.simulated,
        health.fidelity.analytical,
        health.fidelity.audited
    );
    if health.audit.any_activity() {
        println!("audit: {}", health.audit);
    }
    println!(
        "engine: {} events in {:.3}s ({:.0} events/s, {:.0} ns/event)",
        health.engine.events,
        health.engine.sim_secs,
        health.engine.events_per_sec(),
        health.engine.ns_per_event()
    );
    if args.sandboxed {
        let s = &health.sandbox;
        println!(
            "sandbox: {} jobs ok on {} spawned ({} recycled); kills: {} hung, {} crashed, \
             {} over-memory, {} protocol, {} preempted",
            s.jobs_ok,
            s.spawned,
            s.recycled,
            s.hung,
            s.crashed,
            s.over_memory,
            s.protocol,
            s.preempted
        );
    }
    println!(
        "drain: flushed {} queued, quiesced: {}, elapsed {:.1} ms",
        drain.flushed_queued,
        drain.quiesced,
        drain.elapsed.as_secs_f64() * 1e3
    );
    assert!(drain.quiesced, "drain must quiesce within its deadline");
    assert_eq!(
        health.counters.terminal_states(),
        health.counters.accepted,
        "every accepted ticket must reach exactly one terminal state"
    );
    let settled = tickets.iter().filter(|t| t.try_result().is_some()).count();
    assert_eq!(settled, tickets.len(), "every held ticket must be settled after drain");

    println!("\n{}", service.pipeline().instrumentation_footer());
    write_json("serve_health", &health);
}
