//! Ablation sweeps backing the case studies: transfer granularity vs.
//! achieved bandwidth (ITG) and vector instruction size vs. efficiency
//! (AIP), plus the dispatch-distance effect behind AIS.

use ascend_arch::{ChipSpec, ComputeUnit, Precision, TransferPath};
use ascend_bench::{header, write_json};
use serde_json::json;

fn main() {
    let chip = ChipSpec::training();
    header("Ablations", "granularity, repeat, and dispatch sweeps");

    println!("\nUB->GM bandwidth efficiency vs. transfer granularity (ITG):");
    let spec = chip.transfer(TransferPath::UbToGm).unwrap();
    let mut granularity = Vec::new();
    for kib in [1u64, 2, 4, 8, 15, 30, 60, 120, 256, 1024] {
        let eff = spec.efficiency(kib * 1024);
        println!("  {kib:>5} KiB: {:>5.1}% of peak", eff * 100.0);
        granularity.push(json!({"kib": kib, "efficiency": eff}));
    }
    println!("  (the paper's 30 KiB stores sit 'far below the threshold for full bandwidth')");

    println!("\nVector efficiency vs. operations per instruction (AIP):");
    let peak = chip.peak_ops_per_cycle(ComputeUnit::Vector, Precision::Fp16).unwrap();
    let mut repeat = Vec::new();
    for ops in [64u64, 256, 1024, 4096, 16384, 65536, 262144] {
        let cycles = chip.compute_issue_cycles + ops as f64 / peak;
        let eff = ops as f64 / peak / cycles;
        println!("  {ops:>7} ops/instruction: {:>5.1}% of peak", eff * 100.0);
        repeat.push(json!({"ops": ops, "efficiency": eff}));
    }

    println!("\nDispatch distance between two same-queue transfers (AIS):");
    let mut dispatch = Vec::new();
    for intervening in [0u64, 2, 8, 32, 128] {
        let delay = (intervening + 1) as f64 * chip.dispatch_cycles;
        println!(
            "  {intervening:>4} intervening instructions: {delay:>6.0} cycles of dispatch delay"
        );
        dispatch.push(json!({"intervening": intervening, "delay_cycles": delay}));
    }

    write_json(
        "sweeps",
        &json!({
            "granularity": granularity,
            "repeat": repeat,
            "dispatch": dispatch,
        }),
    );
}
