//! Static kernel validation: capacities, paths, precisions, and the
//! synchronization graph.

use crate::{Instruction, IsaError, Kernel};
use ascend_arch::ChipSpec;
use std::collections::HashMap;

/// Validates `kernel` against `chip`.
///
/// Checks, in order:
///
/// 1. the kernel is non-empty;
/// 2. every region fits its buffer's capacity;
/// 3. every compute instruction's precision is supported by its unit;
/// 4. every flag has at least as many `set_flag`s as `wait_flag`s, and no
///    flag is set and awaited on the same queue;
/// 5. the synchronization graph (per-queue program order ∪ matched
///    set→wait edges ∪ barrier edges) is acyclic, i.e. the kernel cannot
///    deadlock under in-order per-queue execution;
/// 6. when a flag is awaited more than once, the waits are totally
///    ordered by that same graph, so which wait consumes which set cannot
///    depend on execution timing.
///
/// # Errors
///
/// Returns the first violated rule as an [`IsaError`].
pub fn validate(kernel: &Kernel, chip: &ChipSpec) -> Result<(), IsaError> {
    if kernel.is_empty() {
        return Err(IsaError::EmptyKernel);
    }
    check_regions(kernel, chip)?;
    check_precisions(kernel)?;
    check_flags(kernel)?;
    check_sync_graph(kernel)
}

fn check_regions(kernel: &Kernel, chip: &ChipSpec) -> Result<(), IsaError> {
    for instr in kernel {
        for region in instr.reads().iter().chain(instr.writes()) {
            // A buffer absent from the spec is a spec hole, not an
            // oversized region; reporting `capacity: 0` here used to mask
            // the real ArchError.
            let capacity = chip
                .capacity(region.buffer())
                .map_err(|_| IsaError::UnknownBuffer { buffer: region.buffer() })?;
            if region.end() > capacity {
                return Err(IsaError::RegionOutOfBounds {
                    buffer: region.buffer(),
                    end: region.end(),
                    capacity,
                });
            }
        }
    }
    Ok(())
}

fn check_precisions(kernel: &Kernel) -> Result<(), IsaError> {
    for instr in kernel {
        if let Instruction::Compute(c) = instr {
            if !c.unit.supports(c.precision) {
                return Err(IsaError::UnsupportedPrecision {
                    unit: c.unit,
                    precision: c.precision,
                });
            }
        }
    }
    Ok(())
}

fn check_flags(kernel: &Kernel) -> Result<(), IsaError> {
    let mut sets: HashMap<u32, usize> = HashMap::new();
    let mut waits: HashMap<u32, usize> = HashMap::new();
    let mut set_queues: HashMap<u32, Vec<ascend_arch::Component>> = HashMap::new();
    for instr in kernel {
        match instr {
            Instruction::SetFlag { queue, flag } => {
                *sets.entry(flag.raw()).or_default() += 1;
                set_queues.entry(flag.raw()).or_default().push(*queue);
            }
            Instruction::WaitFlag { queue, flag } => {
                *waits.entry(flag.raw()).or_default() += 1;
                if set_queues.get(&flag.raw()).is_some_and(|qs| qs.contains(queue)) {
                    return Err(IsaError::SelfSync { queue: *queue, flag: flag.raw() });
                }
            }
            _ => {}
        }
    }
    for (&flag, &wait_count) in &waits {
        let set_count = sets.get(&flag).copied().unwrap_or(0);
        if set_count < wait_count {
            return Err(IsaError::UnmatchedWait { flag, sets: set_count, waits: wait_count });
        }
    }
    Ok(())
}

/// Builds the happens-before graph and rejects cycles.
///
/// Nodes are instruction indices. Edges:
/// - consecutive instructions on the same queue (program order per queue);
/// - the *k*-th `set_flag(f)` → the *k*-th `wait_flag(f)` (counting
///   semantics match sets to waits in program order);
/// - everything dispatched before a `Barrier` → the barrier, and the
///   barrier → everything after it.
fn check_sync_graph(kernel: &Kernel) -> Result<(), IsaError> {
    let n = kernel.len();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    // The subset of `edges` that is *unconditionally* respected by every
    // timing the engine can realize: program order (queues are in-order)
    // and barrier edges (the dispatcher stalls). Set→wait edges are added
    // below only for single-set/single-wait flags, where the lone
    // increment cannot be consumed by anyone else. The wait-ordering
    // check must restrict itself to this subgraph — a path through a
    // multi-set flag's set→wait edge would assume the very index-order
    // consumption it is trying to prove.
    let mut sound: Vec<Vec<usize>> = vec![Vec::new(); n];

    // Per-queue program order.
    let mut last_on_queue: HashMap<ascend_arch::Component, usize> = HashMap::new();
    // Barrier edges.
    let mut last_barrier: Option<usize> = None;
    let mut since_last_barrier: Vec<usize> = Vec::new();
    // Flag matching.
    let mut set_positions: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut wait_positions: HashMap<u32, Vec<usize>> = HashMap::new();

    for (i, instr) in kernel.iter().enumerate() {
        match instr.queue() {
            Some(queue) => {
                if let Some(&prev) = last_on_queue.get(&queue) {
                    edges[prev].push(i);
                    sound[prev].push(i);
                }
                last_on_queue.insert(queue, i);
                if let Some(b) = last_barrier {
                    edges[b].push(i);
                    sound[b].push(i);
                }
                since_last_barrier.push(i);
            }
            None => {
                // Barrier: everything in the current segment must finish
                // first (earlier segments are ordered transitively through
                // the previous barrier).
                for &j in &since_last_barrier {
                    edges[j].push(i);
                    sound[j].push(i);
                }
                if let Some(b) = last_barrier {
                    edges[b].push(i);
                    sound[b].push(i);
                }
                since_last_barrier.clear();
                last_barrier = Some(i);
                last_on_queue.clear();
            }
        }
        match instr {
            Instruction::SetFlag { flag, .. } => {
                set_positions.entry(flag.raw()).or_default().push(i);
            }
            Instruction::WaitFlag { flag, .. } => {
                wait_positions.entry(flag.raw()).or_default().push(i);
            }
            _ => {}
        }
    }

    for (flag, waits) in &wait_positions {
        if let Some(sets) = set_positions.get(flag) {
            for (k, &wait_idx) in waits.iter().enumerate() {
                if let Some(&set_idx) = sets.get(k) {
                    edges[set_idx].push(wait_idx);
                }
            }
            if sets.len() == 1 && waits.len() == 1 {
                sound[sets[0]].push(waits[0]);
            }
        }
    }

    // Kahn's algorithm; a leftover node means a cycle.
    let mut indegree = vec![0usize; n];
    for targets in &edges {
        for &t in targets {
            indegree[t] += 1;
        }
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut visited = 0usize;
    while let Some(node) = stack.pop() {
        visited += 1;
        for &t in &edges[node] {
            indegree[t] -= 1;
            if indegree[t] == 0 {
                stack.push(t);
            }
        }
    }
    if visited != n {
        let at = indegree.iter().position(|&d| d > 0).unwrap_or(0);
        return Err(IsaError::SyncCycle { at });
    }

    // The set→wait edges above pair the k-th set with the k-th wait, but
    // the engine hands increments to whichever wait *starts* first. The
    // static pairing is only a sound model of that temporal race when the
    // waits of each flag are totally ordered — each wait completing
    // before the next can start — under *every* timing. Reachability in
    // the `sound` subgraph proves exactly that: its interior edges all
    // imply completes-no-later-than, and every sound in-edge of a
    // multi-wait flag's wait gates that wait's start (program order or
    // barrier; sound set→wait edges only target single-wait flags).
    // Without this, a wait on a fast queue can steal an increment meant
    // for an earlier-indexed wait whose remaining producer sits behind it
    // — a timing-dependent deadlock (found by the differential fuzzer).
    for (flag, waits) in &wait_positions {
        for pair in waits.windows(2) {
            if !reachable(&sound, pair[0], pair[1]) {
                return Err(IsaError::UnorderedWaits {
                    flag: *flag,
                    first: pair[0],
                    second: pair[1],
                });
            }
        }
    }
    Ok(())
}

/// Whether `to` is reachable from `from` in the (acyclic) edge list.
fn reachable(edges: &[Vec<usize>], from: usize, to: usize) -> bool {
    let mut seen = vec![false; edges.len()];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(node) = stack.pop() {
        if node == to {
            return true;
        }
        for &next in &edges[node] {
            if !seen[next] {
                seen[next] = true;
                stack.push(next);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelBuilder, Region};
    use ascend_arch::{Buffer, Component, ComputeUnit, Precision, TransferPath};

    fn chip() -> ChipSpec {
        ChipSpec::training()
    }

    #[test]
    fn empty_kernel_is_rejected() {
        let k = KernelBuilder::new("empty").build();
        assert_eq!(validate(&k, &chip()), Err(IsaError::EmptyKernel));
    }

    #[test]
    fn valid_pipeline_passes() {
        let gm = Region::new(Buffer::Gm, 0, 1024);
        let ub = Region::new(Buffer::Ub, 0, 1024);
        let out = Region::new(Buffer::Gm, 4096, 1024);
        let mut b = KernelBuilder::new("ok");
        let loaded = b.new_flag();
        let done = b.new_flag();
        b.transfer(TransferPath::GmToUb, gm, ub).unwrap();
        b.set_flag(Component::MteGm, loaded);
        b.wait_flag(Component::Vector, loaded);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 512, vec![ub], vec![ub]);
        b.set_flag(Component::Vector, done);
        b.wait_flag(Component::MteUb, done);
        b.transfer(TransferPath::UbToGm, ub, out).unwrap();
        assert_eq!(validate(&b.build(), &chip()), Ok(()));
    }

    #[test]
    fn oversized_region_is_rejected() {
        let huge = Region::new(Buffer::L0A, 0, 1 << 30);
        let gm = Region::new(Buffer::Gm, 0, 1 << 30);
        let mut b = KernelBuilder::new("big");
        b.transfer(TransferPath::GmToL0A, gm, huge).unwrap();
        assert!(matches!(
            validate(&b.build(), &chip()),
            Err(IsaError::RegionOutOfBounds { buffer: Buffer::L0A, .. })
        ));
    }

    /// A training spec with the L0A capacity entry removed, built through
    /// a serde round-trip (the capacity table is private by design).
    fn chip_without_l0a() -> ChipSpec {
        let serde::Value::Object(mut map) = serde_json::to_value(&chip()) else {
            panic!("chip specs serialize as objects")
        };
        let serde::Value::Array(caps) = map.remove("capacities").expect("capacities field") else {
            panic!("capacities serialize as an array")
        };
        let caps = caps
            .into_iter()
            .filter(|cap| cap.get("buffer").and_then(serde::Value::as_str) != Some("L0A"))
            .collect();
        map.insert("capacities".to_owned(), serde::Value::Array(caps));
        let json = serde_json::to_string(&serde::Value::Object(map)).unwrap();
        serde_json::from_str(&json).expect("holed spec still deserializes")
    }

    #[test]
    fn unknown_buffer_is_reported_distinctly() {
        // A buffer absent from the spec must be named as the spec hole it
        // is, not reported as `RegionOutOfBounds { capacity: 0 }`.
        let holed = chip_without_l0a();
        assert!(holed.capacity(Buffer::L0A).is_err());

        let l0a = Region::new(Buffer::L0A, 0, 128);
        let gm = Region::new(Buffer::Gm, 0, 128);
        let mut b = KernelBuilder::new("holed");
        b.transfer(TransferPath::GmToL0A, gm, l0a).unwrap();
        assert_eq!(
            validate(&b.build(), &holed),
            Err(IsaError::UnknownBuffer { buffer: Buffer::L0A })
        );
    }

    #[test]
    fn cube_fp32_is_rejected() {
        let l0c = Region::new(Buffer::L0C, 0, 64);
        let mut b = KernelBuilder::new("badprec");
        b.compute(ComputeUnit::Cube, Precision::Fp32, 64, vec![], vec![l0c]);
        assert_eq!(
            validate(&b.build(), &chip()),
            Err(IsaError::UnsupportedPrecision {
                unit: ComputeUnit::Cube,
                precision: Precision::Fp32
            })
        );
    }

    #[test]
    fn unmatched_wait_is_rejected() {
        let mut b = KernelBuilder::new("hang");
        let f = b.new_flag();
        b.wait_flag(Component::Vector, f);
        assert_eq!(
            validate(&b.build(), &chip()),
            Err(IsaError::UnmatchedWait { flag: 0, sets: 0, waits: 1 })
        );
    }

    #[test]
    fn self_sync_is_rejected() {
        let mut b = KernelBuilder::new("self");
        let f = b.new_flag();
        b.set_flag(Component::Vector, f);
        b.wait_flag(Component::Vector, f);
        assert_eq!(
            validate(&b.build(), &chip()),
            Err(IsaError::SelfSync { queue: Component::Vector, flag: 0 })
        );
    }

    #[test]
    fn cross_wait_deadlock_is_rejected() {
        // Queue A waits for a flag set behind queue B's wait for a flag set
        // behind queue A's wait: a 2-cycle.
        let mut b = KernelBuilder::new("deadlock");
        let fa = b.new_flag();
        let fb = b.new_flag();
        b.wait_flag(Component::Vector, fa); // Vector blocks on fa
        b.set_flag(Component::Vector, fb); // ... then would set fb
        b.wait_flag(Component::MteGm, fb); // MteGm blocks on fb
        b.set_flag(Component::MteGm, fa); // ... then would set fa
        assert!(matches!(validate(&b.build(), &chip()), Err(IsaError::SyncCycle { .. })));
    }

    #[test]
    fn forward_only_flags_are_fine_even_when_wait_precedes_set() {
        // wait dispatched before set, but on different queues: legal.
        let mut b = KernelBuilder::new("forward");
        let f = b.new_flag();
        b.wait_flag(Component::Vector, f);
        b.set_flag(Component::MteGm, f);
        assert_eq!(validate(&b.build(), &chip()), Ok(()));
    }

    #[test]
    fn timing_dependent_wait_order_is_rejected() {
        // Three sets and three waits of one flag. The first two sets fire
        // quickly; the waits on cube and vector (fast, empty queues) can
        // start before mte-l1's wait and steal both increments. mte-l1's
        // only remaining producer then sits *behind* its wait on the same
        // queue: deadlock under one timing, completion under another. The
        // validator must reject regardless of which timing the engine
        // happens to realize.
        let mut b = KernelBuilder::new("steal");
        let f = b.new_flag();
        b.set_flag(Component::MteUb, f);
        b.set_flag(Component::Scalar, f);
        b.wait_flag(Component::MteL1, f);
        b.set_flag(Component::MteL1, f);
        b.wait_flag(Component::Cube, f);
        b.wait_flag(Component::Vector, f);
        assert!(matches!(
            validate(&b.build(), &chip()),
            Err(IsaError::UnorderedWaits { flag: 0, .. })
        ));
    }

    #[test]
    fn ordered_repeated_waits_are_accepted() {
        // Two waits of the same flag are fine when the graph orders them:
        // here both sit on the same queue, so program order decides which
        // consumes first under every timing.
        let mut b = KernelBuilder::new("ordered");
        let f = b.new_flag();
        b.set_flag(Component::MteGm, f);
        b.wait_flag(Component::Vector, f);
        b.set_flag(Component::Scalar, f);
        b.wait_flag(Component::Vector, f);
        assert_eq!(validate(&b.build(), &chip()), Ok(()));
    }

    #[test]
    fn cross_queue_waits_chained_through_a_private_flag_are_accepted() {
        // Repeated waits of `f` on different queues, ordered through a
        // single-set/single-wait flag `g`: vector's wait completes, vector
        // sets g, cube waits g before its own wait of f. The unique-token
        // edge of g makes the ordering timing-independent.
        let mut b = KernelBuilder::new("chained");
        let f = b.new_flag();
        let g = b.new_flag();
        b.set_flag(Component::MteGm, f);
        b.wait_flag(Component::Vector, f);
        b.set_flag(Component::Vector, g);
        b.set_flag(Component::Scalar, f);
        b.wait_flag(Component::Cube, g);
        b.wait_flag(Component::Cube, f);
        assert_eq!(validate(&b.build(), &chip()), Ok(()));
    }

    #[test]
    fn barrier_orders_everything() {
        let mut b = KernelBuilder::new("barrier");
        let f = b.new_flag();
        b.set_flag(Component::MteGm, f);
        b.barrier_all();
        b.wait_flag(Component::Vector, f);
        assert_eq!(validate(&b.build(), &chip()), Ok(()));
    }
}
