//! The instruction classes of the kernel IR.

use crate::Region;
use ascend_arch::{Component, ComputeUnit, Precision, TransferPath};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a synchronization flag (an event register).
///
/// Flags carry counting semantics: every completed `set_flag` increments
/// the flag, every started `wait_flag` consumes one increment. This mirrors
/// the event registers of the hardware pipe-synchronization instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlagId(u32);

impl FlagId {
    /// Creates a flag id from its raw number.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        FlagId(raw)
    }

    /// The raw flag number.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FlagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flag{}", self.0)
    }
}

/// A compute instruction executed on one compute unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeInstr {
    /// The unit that executes this instruction.
    pub unit: ComputeUnit,
    /// Operand precision.
    pub precision: Precision,
    /// Number of arithmetic operations performed (multiply-accumulate
    /// counts as two).
    pub ops: u64,
    /// Regions read by the instruction.
    pub reads: Vec<Region>,
    /// Regions written by the instruction.
    pub writes: Vec<Region>,
}

/// A data-transfer instruction scheduled on an MTE queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferInstr {
    /// The transfer path (determines the owning MTE).
    pub path: TransferPath,
    /// Source region (read).
    pub src: Region,
    /// Destination region (written).
    pub dst: Region,
}

impl TransferInstr {
    /// Bytes moved by this transfer.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.src.len()
    }
}

/// One instruction of a kernel.
///
/// Instructions are dispatched in program order by the AICore's scalar
/// front-end and executed in order within their component queue; different
/// queues run in parallel (paper, Section 2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// Arithmetic on a compute unit.
    Compute(ComputeInstr),
    /// An MTE-scheduled data movement.
    Transfer(TransferInstr),
    /// Increment `flag` from `queue` (ordered within `queue`).
    SetFlag {
        /// Queue that executes the set.
        queue: Component,
        /// The flag to increment.
        flag: FlagId,
    },
    /// Block `queue` until `flag` has an unconsumed increment.
    WaitFlag {
        /// Queue that blocks.
        queue: Component,
        /// The flag to consume.
        flag: FlagId,
    },
    /// `pipe_barrier(PIPE_ALL)`: the dispatcher stalls until every
    /// previously dispatched instruction has completed.
    Barrier,
}

impl Instruction {
    /// The component queue this instruction executes on, or `None` for a
    /// dispatcher-level barrier.
    #[must_use]
    pub fn queue(&self) -> Option<Component> {
        match self {
            Instruction::Compute(c) => Some(Component::from_unit(c.unit)),
            Instruction::Transfer(t) => Some(t.path.component()),
            Instruction::SetFlag { queue, .. } | Instruction::WaitFlag { queue, .. } => {
                Some(*queue)
            }
            Instruction::Barrier => None,
        }
    }

    /// Regions this instruction reads.
    #[must_use]
    pub fn reads(&self) -> &[Region] {
        match self {
            Instruction::Compute(c) => &c.reads,
            Instruction::Transfer(t) => std::slice::from_ref(&t.src),
            _ => &[],
        }
    }

    /// Regions this instruction writes.
    #[must_use]
    pub fn writes(&self) -> &[Region] {
        match self {
            Instruction::Compute(c) => &c.writes,
            Instruction::Transfer(t) => std::slice::from_ref(&t.dst),
            _ => &[],
        }
    }

    /// Whether this instruction conflicts with `other` through memory:
    /// write-write, read-write, or write-read on overlapping regions.
    ///
    /// Conflicting instructions on *different* queues serialize in the
    /// simulator — the paper's *spatial dependency* (Section 5.1).
    #[must_use]
    pub fn conflicts_with(&self, other: &Instruction) -> bool {
        let rw = |a: &Instruction, b: &Instruction| {
            a.writes().iter().any(|w| b.reads().iter().chain(b.writes()).any(|r| w.overlaps(r)))
        };
        rw(self, other) || rw(other, self)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Compute(c) => {
                write!(f, "{}.{} ops={}", c.unit, c.precision, c.ops)
            }
            Instruction::Transfer(t) => {
                write!(f, "move {} {} -> {}", t.path, t.src, t.dst)
            }
            Instruction::SetFlag { queue, flag } => write!(f, "set {flag} @{queue}"),
            Instruction::WaitFlag { queue, flag } => write!(f, "wait {flag} @{queue}"),
            Instruction::Barrier => write!(f, "pipe_barrier(ALL)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_arch::Buffer;

    fn transfer(path: TransferPath, src: Region, dst: Region) -> Instruction {
        Instruction::Transfer(TransferInstr { path, src, dst })
    }

    #[test]
    fn queue_assignment() {
        let ub = Region::new(Buffer::Ub, 0, 64);
        let gm = Region::new(Buffer::Gm, 0, 64);
        let load = transfer(TransferPath::GmToUb, gm, ub);
        assert_eq!(load.queue(), Some(Component::MteGm));
        let store = transfer(TransferPath::UbToGm, ub, gm);
        assert_eq!(store.queue(), Some(Component::MteUb));
        let add = Instruction::Compute(ComputeInstr {
            unit: ComputeUnit::Vector,
            precision: Precision::Fp16,
            ops: 32,
            reads: vec![ub],
            writes: vec![ub],
        });
        assert_eq!(add.queue(), Some(Component::Vector));
        assert_eq!(Instruction::Barrier.queue(), None);
    }

    #[test]
    fn spatial_dependency_detected() {
        // The Add_ReLU case: write-back of ub_1 vs. load into ub_1.
        let ub_1 = Region::new(Buffer::Ub, 0, 1024);
        let gm_1 = Region::new(Buffer::Gm, 0, 1024);
        let gm_2 = Region::new(Buffer::Gm, 4096, 1024);
        let write_back = transfer(TransferPath::UbToGm, ub_1, gm_1);
        let next_load = transfer(TransferPath::GmToUb, gm_2, ub_1);
        assert!(write_back.conflicts_with(&next_load));
        // With a second UB region (RSD applied) there is no conflict.
        let ub_2 = Region::new(Buffer::Ub, 2048, 1024);
        let next_load_rsd = transfer(TransferPath::GmToUb, gm_2, ub_2);
        assert!(!write_back.conflicts_with(&next_load_rsd));
    }

    #[test]
    fn read_read_does_not_conflict() {
        let gm = Region::new(Buffer::Gm, 0, 1024);
        let ub_a = Region::new(Buffer::Ub, 0, 1024);
        let ub_b = Region::new(Buffer::Ub, 1024, 1024);
        let a = transfer(TransferPath::GmToUb, gm, ub_a);
        let b = transfer(TransferPath::GmToUb, gm, ub_b);
        assert!(!a.conflicts_with(&b), "two reads of the same GM region may overlap");
    }

    #[test]
    fn sync_instructions_touch_no_memory() {
        let set = Instruction::SetFlag { queue: Component::Vector, flag: FlagId::new(0) };
        assert!(set.reads().is_empty() && set.writes().is_empty());
    }
}
