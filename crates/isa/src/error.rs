//! Error type for kernel construction and validation.

use ascend_arch::{Buffer, Component, ComputeUnit, Precision, TransferPath};
use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A buffer cannot satisfy an allocation request.
    OutOfBufferSpace {
        /// The buffer that overflowed.
        buffer: Buffer,
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// A transfer's source region does not live in the path's source buffer.
    PathSourceMismatch {
        /// The transfer path.
        path: TransferPath,
        /// The buffer the source region actually lives in.
        found: Buffer,
    },
    /// A transfer's destination region does not live in the path's
    /// destination buffer.
    PathDestinationMismatch {
        /// The transfer path.
        path: TransferPath,
        /// The buffer the destination region actually lives in.
        found: Buffer,
    },
    /// Source and destination lengths differ.
    TransferLengthMismatch {
        /// Source length in bytes.
        src_len: u64,
        /// Destination length in bytes.
        dst_len: u64,
    },
    /// A transfer names a fixed-function (direct) path; kernels may only
    /// issue MTE-scheduled transfers.
    DirectPathInKernel {
        /// The offending path.
        path: TransferPath,
    },
    /// A compute instruction uses a precision its unit does not support.
    UnsupportedPrecision {
        /// The compute unit.
        unit: ComputeUnit,
        /// The unsupported precision.
        precision: Precision,
    },
    /// A region exceeds the capacity of its buffer on the target chip.
    RegionOutOfBounds {
        /// The buffer.
        buffer: Buffer,
        /// One-past-the-end offset of the region.
        end: u64,
        /// The buffer's capacity.
        capacity: u64,
    },
    /// A `wait_flag` has no matching `set_flag` (or waits outnumber sets).
    UnmatchedWait {
        /// The flag's numeric id.
        flag: u32,
        /// Number of `set_flag`s in the kernel.
        sets: usize,
        /// Number of `wait_flag`s in the kernel.
        waits: usize,
    },
    /// A `set_flag` and its matching `wait_flag` live on the same queue,
    /// which serializes trivially and indicates a authoring bug.
    SelfSync {
        /// The queue that both sides run on.
        queue: Component,
        /// The flag's numeric id.
        flag: u32,
    },
    /// The synchronization graph contains a cycle: the kernel would
    /// deadlock under in-order per-queue execution.
    SyncCycle {
        /// Index of an instruction on the cycle.
        at: usize,
    },
    /// The kernel is empty.
    EmptyKernel,
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::OutOfBufferSpace { buffer, requested, available } => write!(
                f,
                "buffer {buffer} cannot allocate {requested} bytes ({available} available)"
            ),
            IsaError::PathSourceMismatch { path, found } => {
                write!(f, "transfer {path} sources from {found}, not the path's source buffer")
            }
            IsaError::PathDestinationMismatch { path, found } => {
                write!(f, "transfer {path} writes into {found}, not the path's destination buffer")
            }
            IsaError::TransferLengthMismatch { src_len, dst_len } => {
                write!(f, "transfer source is {src_len} bytes but destination is {dst_len} bytes")
            }
            IsaError::DirectPathInKernel { path } => {
                write!(f, "path {path} is fixed-function and cannot be issued from a kernel")
            }
            IsaError::UnsupportedPrecision { unit, precision } => {
                write!(f, "compute unit {unit} does not support precision {precision}")
            }
            IsaError::RegionOutOfBounds { buffer, end, capacity } => {
                write!(f, "region ends at byte {end} but buffer {buffer} holds {capacity} bytes")
            }
            IsaError::UnmatchedWait { flag, sets, waits } => {
                write!(f, "flag {flag} has {waits} waits but only {sets} sets")
            }
            IsaError::SelfSync { queue, flag } => {
                write!(f, "flag {flag} is both set and awaited on queue {queue}")
            }
            IsaError::SyncCycle { at } => {
                write!(f, "synchronization cycle detected through instruction {at}")
            }
            IsaError::EmptyKernel => write!(f, "kernel contains no instructions"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_without_trailing_period() {
        let errors = [
            IsaError::EmptyKernel,
            IsaError::TransferLengthMismatch { src_len: 1, dst_len: 2 },
            IsaError::SyncCycle { at: 3 },
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }
}
