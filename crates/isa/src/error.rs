//! Error type for kernel construction and validation.

use ascend_arch::{Buffer, Component, ComputeUnit, Precision, TransferPath};
use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A buffer cannot satisfy an allocation request.
    OutOfBufferSpace {
        /// The buffer that overflowed.
        buffer: Buffer,
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// A transfer's source region does not live in the path's source buffer.
    PathSourceMismatch {
        /// The transfer path.
        path: TransferPath,
        /// The buffer the source region actually lives in.
        found: Buffer,
    },
    /// A transfer's destination region does not live in the path's
    /// destination buffer.
    PathDestinationMismatch {
        /// The transfer path.
        path: TransferPath,
        /// The buffer the destination region actually lives in.
        found: Buffer,
    },
    /// Source and destination lengths differ.
    TransferLengthMismatch {
        /// Source length in bytes.
        src_len: u64,
        /// Destination length in bytes.
        dst_len: u64,
    },
    /// A transfer names a fixed-function (direct) path; kernels may only
    /// issue MTE-scheduled transfers.
    DirectPathInKernel {
        /// The offending path.
        path: TransferPath,
    },
    /// A compute instruction uses a precision its unit does not support.
    UnsupportedPrecision {
        /// The compute unit.
        unit: ComputeUnit,
        /// The unsupported precision.
        precision: Precision,
    },
    /// A region references a buffer the target chip specification defines
    /// no capacity for. Distinct from [`IsaError::RegionOutOfBounds`]:
    /// this is a hole in the chip spec, not an oversized region.
    UnknownBuffer {
        /// The buffer missing from the spec.
        buffer: Buffer,
    },
    /// A region exceeds the capacity of its buffer on the target chip.
    RegionOutOfBounds {
        /// The buffer.
        buffer: Buffer,
        /// One-past-the-end offset of the region.
        end: u64,
        /// The buffer's capacity.
        capacity: u64,
    },
    /// A `wait_flag` has no matching `set_flag` (or waits outnumber sets).
    UnmatchedWait {
        /// The flag's numeric id.
        flag: u32,
        /// Number of `set_flag`s in the kernel.
        sets: usize,
        /// Number of `wait_flag`s in the kernel.
        waits: usize,
    },
    /// A `set_flag` and its matching `wait_flag` live on the same queue,
    /// which serializes trivially and indicates a authoring bug.
    SelfSync {
        /// The queue that both sides run on.
        queue: Component,
        /// The flag's numeric id.
        flag: u32,
    },
    /// Two `wait_flag`s of the same flag are not ordered by the
    /// synchronization graph: which one consumes an increment would
    /// depend on execution timing, and the unlucky ordering can starve a
    /// wait whose remaining producer sits behind it (a timing-dependent
    /// deadlock the validator must rule out for *all* timings).
    UnorderedWaits {
        /// The flag's numeric id.
        flag: u32,
        /// Index of the earlier (by program position) wait.
        first: usize,
        /// Index of the later wait, not provably after `first`.
        second: usize,
    },
    /// The synchronization graph contains a cycle: the kernel would
    /// deadlock under in-order per-queue execution.
    SyncCycle {
        /// Index of an instruction on the cycle.
        at: usize,
    },
    /// The kernel is empty.
    EmptyKernel,
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::OutOfBufferSpace { buffer, requested, available } => write!(
                f,
                "buffer {buffer} cannot allocate {requested} bytes ({available} available)"
            ),
            IsaError::PathSourceMismatch { path, found } => {
                write!(f, "transfer {path} sources from {found}, not the path's source buffer")
            }
            IsaError::PathDestinationMismatch { path, found } => {
                write!(f, "transfer {path} writes into {found}, not the path's destination buffer")
            }
            IsaError::TransferLengthMismatch { src_len, dst_len } => {
                write!(f, "transfer source is {src_len} bytes but destination is {dst_len} bytes")
            }
            IsaError::DirectPathInKernel { path } => {
                write!(f, "path {path} is fixed-function and cannot be issued from a kernel")
            }
            IsaError::UnsupportedPrecision { unit, precision } => {
                write!(f, "compute unit {unit} does not support precision {precision}")
            }
            IsaError::UnknownBuffer { buffer } => {
                write!(f, "region references buffer {buffer}, which the chip does not define")
            }
            IsaError::RegionOutOfBounds { buffer, end, capacity } => {
                write!(f, "region ends at byte {end} but buffer {buffer} holds {capacity} bytes")
            }
            IsaError::UnmatchedWait { flag, sets, waits } => {
                write!(f, "flag {flag} has {waits} waits but only {sets} sets")
            }
            IsaError::SelfSync { queue, flag } => {
                write!(f, "flag {flag} is both set and awaited on queue {queue}")
            }
            IsaError::UnorderedWaits { flag, first, second } => write!(
                f,
                "waits of flag {flag} at instructions {first} and {second} are not \
                 synchronization-ordered; which consumes a set would depend on timing"
            ),
            IsaError::SyncCycle { at } => {
                write!(f, "synchronization cycle detected through instruction {at}")
            }
            IsaError::EmptyKernel => write!(f, "kernel contains no instructions"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_without_trailing_period() {
        let errors = [
            IsaError::EmptyKernel,
            IsaError::TransferLengthMismatch { src_len: 1, dst_len: 2 },
            IsaError::SyncCycle { at: 3 },
            IsaError::UnknownBuffer { buffer: Buffer::L0A },
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn display_snapshots_stay_stable() {
        // Exact snapshots: validation messages surface in deadlock
        // forensics and CI logs, so wording changes must be deliberate.
        let cases = [
            (
                IsaError::UnknownBuffer { buffer: Buffer::L0B },
                "region references buffer l0b, which the chip does not define",
            ),
            (
                IsaError::RegionOutOfBounds { buffer: Buffer::Ub, end: 300, capacity: 256 },
                "region ends at byte 300 but buffer ub holds 256 bytes",
            ),
            (
                IsaError::UnmatchedWait { flag: 7, sets: 1, waits: 2 },
                "flag 7 has 2 waits but only 1 sets",
            ),
            (
                IsaError::SelfSync { queue: Component::Vector, flag: 3 },
                "flag 3 is both set and awaited on queue vector",
            ),
            (IsaError::SyncCycle { at: 9 }, "synchronization cycle detected through instruction 9"),
            (
                IsaError::UnorderedWaits { flag: 1, first: 3, second: 8 },
                "waits of flag 1 at instructions 3 and 8 are not synchronization-ordered; \
                 which consumes a set would depend on timing",
            ),
            (IsaError::EmptyKernel, "kernel contains no instructions"),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
            assert!(std::error::Error::source(&err).is_none());
        }
    }
}
