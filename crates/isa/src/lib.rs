#![warn(missing_docs)]

//! Instruction set and kernel IR for the Ascend AICore model.
//!
//! Kernels on Ascend are explicit: the author issues *transfer* instructions
//! to move tiles between buffers, *compute* instructions on the Scalar,
//! Vector, or Cube unit, and *synchronization* instructions
//! (`set_flag`/`wait_flag`, `pipe_barrier`) to order the six component
//! queues against each other. This crate provides that programming model:
//!
//! - [`Region`] — a byte range inside a [`Buffer`](ascend_arch::Buffer);
//! - [`BufferAllocator`] — bump allocation with capacity checking;
//! - [`Instruction`] — the four instruction classes;
//! - [`Kernel`] / [`KernelBuilder`] — an ordered instruction stream;
//! - [`validate`] — static checks (capacity, path/buffer agreement,
//!   flag-matching, deadlock-freedom of the sync graph);
//! - [`KernelStats`] — static operation/byte counts per component.
//!
//! # Examples
//!
//! ```
//! use ascend_arch::{Buffer, ChipSpec, ComputeUnit, Precision, TransferPath};
//! use ascend_isa::{BufferAllocator, KernelBuilder};
//!
//! let chip = ChipSpec::training();
//! let mut alloc = BufferAllocator::new(&chip);
//! let gm_in = alloc.alloc(Buffer::Gm, 1024)?;
//! let ub = alloc.alloc(Buffer::Ub, 1024)?;
//! let gm_out = alloc.alloc(Buffer::Gm, 1024)?;
//!
//! let mut b = KernelBuilder::new("copy_add");
//! let ready = b.new_flag();
//! b.transfer(TransferPath::GmToUb, gm_in, ub)?;
//! b.set_flag(ascend_arch::Component::MteGm, ready);
//! b.wait_flag(ascend_arch::Component::Vector, ready);
//! b.compute(ComputeUnit::Vector, Precision::Fp16, 512, vec![ub], vec![ub]);
//! b.transfer(TransferPath::UbToGm, ub, gm_out)?;
//! let kernel = b.build();
//! assert_eq!(kernel.len(), 5);
//! ascend_isa::validate(&kernel, &chip)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod alloc;
mod error;
mod instruction;
mod kernel;
mod stats;
pub mod text;
mod validate;

pub use alloc::{BufferAllocator, Region};
pub use error::IsaError;
pub use instruction::{ComputeInstr, FlagId, Instruction, TransferInstr};
pub use kernel::{Kernel, KernelBuilder};
pub use stats::{ops_map_serde, KernelStats};
pub use text::{kernel_to_text, parse_kernel};
pub use validate::validate;
