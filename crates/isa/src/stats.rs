//! Static kernel statistics: instruction, operation, and byte counts.

use crate::{Instruction, Kernel};
use ascend_arch::{Component, ComputeUnit, Precision, TransferPath};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Static (pre-execution) counts over a kernel.
///
/// These are exactly the per-queue instruction counts the paper derives
/// from profiling the component instruction queues (Section 3.1): the
/// number of operations per precision per unit and the number of bytes per
/// transfer path.
///
/// # Examples
///
/// ```
/// use ascend_arch::{Buffer, Component, ComputeUnit, Precision, TransferPath};
/// use ascend_isa::{KernelBuilder, KernelStats, Region};
///
/// let gm = Region::new(Buffer::Gm, 0, 512);
/// let ub = Region::new(Buffer::Ub, 0, 512);
/// let mut b = KernelBuilder::new("k");
/// b.transfer(TransferPath::GmToUb, gm, ub)?;
/// b.compute(ComputeUnit::Vector, Precision::Fp16, 256, vec![ub], vec![ub]);
/// let stats = KernelStats::of(&b.build());
/// assert_eq!(stats.bytes_on_path(TransferPath::GmToUb), 512);
/// assert_eq!(stats.ops_of(ComputeUnit::Vector, Precision::Fp16), 256);
/// # Ok::<(), ascend_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Instructions per component queue.
    pub instructions_per_queue: BTreeMap<Component, u64>,
    /// Operations per (unit, precision).
    #[serde(with = "ops_map_serde")]
    pub ops: BTreeMap<(ComputeUnit, Precision), u64>,
    /// Bytes per transfer path.
    pub bytes: BTreeMap<TransferPath, u64>,
    /// Number of `set_flag`/`wait_flag` instructions.
    pub sync_count: u64,
    /// Number of full pipe barriers.
    pub barrier_count: u64,
}

impl KernelStats {
    /// Computes the statistics of `kernel`.
    #[must_use]
    pub fn of(kernel: &Kernel) -> Self {
        let mut stats = KernelStats::default();
        for instr in kernel {
            if let Some(queue) = instr.queue() {
                *stats.instructions_per_queue.entry(queue).or_default() += 1;
            }
            match instr {
                Instruction::Compute(c) => {
                    *stats.ops.entry((c.unit, c.precision)).or_default() += c.ops;
                }
                Instruction::Transfer(t) => {
                    *stats.bytes.entry(t.path).or_default() += t.bytes();
                }
                Instruction::SetFlag { .. } | Instruction::WaitFlag { .. } => {
                    stats.sync_count += 1;
                }
                Instruction::Barrier => stats.barrier_count += 1,
            }
        }
        stats
    }

    /// Total operations executed on `unit` at `precision`.
    #[must_use]
    pub fn ops_of(&self, unit: ComputeUnit, precision: Precision) -> u64 {
        self.ops.get(&(unit, precision)).copied().unwrap_or(0)
    }

    /// Total operations executed on `unit`, all precisions.
    #[must_use]
    pub fn total_ops(&self, unit: ComputeUnit) -> u64 {
        self.ops.iter().filter(|((u, _), _)| *u == unit).map(|(_, &n)| n).sum()
    }

    /// Bytes moved along `path`.
    #[must_use]
    pub fn bytes_on_path(&self, path: TransferPath) -> u64 {
        self.bytes.get(&path).copied().unwrap_or(0)
    }

    /// Bytes moved by the MTE engine behind `component` (0 for compute
    /// components).
    #[must_use]
    pub fn bytes_of_component(&self, component: Component) -> u64 {
        self.bytes.iter().filter(|(path, _)| path.component() == component).map(|(_, &b)| b).sum()
    }

    /// Arithmetic intensity of the kernel w.r.t. one memory component:
    /// total compute operations divided by that component's bytes.
    ///
    /// Returns `None` when the component moved no bytes.
    #[must_use]
    pub fn arithmetic_intensity(&self, memory: Component) -> Option<f64> {
        let bytes = self.bytes_of_component(memory);
        if bytes == 0 {
            return None;
        }
        let ops: u64 = self.ops.values().sum();
        Some(ops as f64 / bytes as f64)
    }
}

/// Serde adapter for maps keyed by `(ComputeUnit, Precision)` tuples.
///
/// JSON requires string map keys, so the map is (de)serialized as a
/// sequence of `(unit, precision, count)` triples. Usable via
/// `#[serde(with = "ascend_isa::ops_map_serde")]`.
pub mod ops_map_serde {
    use ascend_arch::{ComputeUnit, Precision};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    /// Serializes the map as `(unit, precision, count)` triples.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    pub fn serialize<S: Serializer>(
        map: &BTreeMap<(ComputeUnit, Precision), u64>,
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        let entries: Vec<(ComputeUnit, Precision, u64)> =
            map.iter().map(|(&(u, p), &n)| (u, p, n)).collect();
        entries.serialize(serializer)
    }

    /// Deserializes `(unit, precision, count)` triples back into a map.
    ///
    /// # Errors
    ///
    /// Propagates deserializer errors.
    pub fn deserialize<'de, D: Deserializer<'de>>(
        deserializer: D,
    ) -> Result<BTreeMap<(ComputeUnit, Precision), u64>, D::Error> {
        let entries = Vec::<(ComputeUnit, Precision, u64)>::deserialize(deserializer)?;
        Ok(entries.into_iter().map(|(u, p, n)| ((u, p), n)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelBuilder, Region};
    use ascend_arch::Buffer;

    fn sample() -> Kernel {
        let gm_a = Region::new(Buffer::Gm, 0, 2048);
        let gm_b = Region::new(Buffer::Gm, 8192, 1024);
        let l0a = Region::new(Buffer::L0A, 0, 2048);
        let l0b = Region::new(Buffer::L0B, 0, 1024);
        let l0c = Region::new(Buffer::L0C, 0, 4096);
        let mut b = KernelBuilder::new("mm");
        b.transfer(TransferPath::GmToL0A, gm_a, l0a).unwrap();
        b.transfer(TransferPath::GmToL0B, gm_b, l0b).unwrap();
        b.sync(Component::MteGm, Component::Cube);
        b.compute(ComputeUnit::Cube, Precision::Fp16, 1 << 20, vec![l0a, l0b], vec![l0c]);
        b.barrier_all();
        b.build()
    }

    #[test]
    fn counts_match_construction() {
        let stats = KernelStats::of(&sample());
        assert_eq!(stats.bytes_on_path(TransferPath::GmToL0A), 2048);
        assert_eq!(stats.bytes_on_path(TransferPath::GmToL0B), 1024);
        assert_eq!(stats.bytes_of_component(Component::MteGm), 3072);
        assert_eq!(stats.ops_of(ComputeUnit::Cube, Precision::Fp16), 1 << 20);
        assert_eq!(stats.total_ops(ComputeUnit::Cube), 1 << 20);
        assert_eq!(stats.sync_count, 2);
        assert_eq!(stats.barrier_count, 1);
    }

    #[test]
    fn queue_counts_include_sync() {
        let stats = KernelStats::of(&sample());
        // MTE-GM: two transfers + one set_flag.
        assert_eq!(stats.instructions_per_queue[&Component::MteGm], 3);
        // Cube: one wait_flag + one compute.
        assert_eq!(stats.instructions_per_queue[&Component::Cube], 2);
    }

    #[test]
    fn arithmetic_intensity_over_mte_gm() {
        let stats = KernelStats::of(&sample());
        let ai = stats.arithmetic_intensity(Component::MteGm).unwrap();
        assert!((ai - (1u64 << 20) as f64 / 3072.0).abs() < 1e-9);
        assert_eq!(stats.arithmetic_intensity(Component::MteUb), None);
    }

    #[test]
    fn serde_round_trip_through_json() {
        let stats = KernelStats::of(&sample());
        let json = serde_json::to_string(&stats).unwrap();
        let back: KernelStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }

    #[test]
    fn empty_kernel_has_zero_stats() {
        let stats = KernelStats::of(&KernelBuilder::new("nil").build());
        assert_eq!(stats, KernelStats::default());
    }
}
