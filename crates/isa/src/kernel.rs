//! Kernels: ordered instruction streams, and their builder.

use crate::{ComputeInstr, FlagId, Instruction, IsaError, Region, TransferInstr};
use ascend_arch::{Component, ComputeUnit, Precision, TransferPath};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An operator kernel: a named, ordered stream of instructions.
///
/// Program order is significant: the in-order dispatcher hands instructions
/// to the component queues in exactly this order, so reordering transfers
/// (the paper's *Adjusting Instruction Sequence*) changes performance even
/// when the per-queue order is unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    name: String,
    instructions: Vec<Instruction>,
}

impl Kernel {
    /// Creates a kernel from parts. Prefer [`KernelBuilder`].
    #[must_use]
    pub fn from_parts(name: impl Into<String>, instructions: Vec<Instruction>) -> Self {
        Kernel { name: name.into(), instructions }
    }

    /// The kernel's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction stream in program order.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the kernel has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Replaces the instruction stream (used by optimization passes).
    #[must_use]
    pub fn with_instructions(&self, instructions: Vec<Instruction>) -> Kernel {
        Kernel { name: self.name.clone(), instructions }
    }

    /// Returns a copy under a new name.
    #[must_use]
    pub fn renamed(&self, name: impl Into<String>) -> Kernel {
        Kernel { name: name.into(), instructions: self.instructions.clone() }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel {} ({} instructions):", self.name, self.len())?;
        for (i, instr) in self.instructions.iter().enumerate() {
            let queue = instr.queue().map_or_else(|| "-".to_owned(), |q| q.to_string());
            writeln!(f, "  [{i:>4}] {queue:<7} {instr}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Kernel {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

/// Incremental builder for [`Kernel`]s.
///
/// # Examples
///
/// ```
/// use ascend_arch::{Buffer, Component, ComputeUnit, Precision, TransferPath};
/// use ascend_isa::{KernelBuilder, Region};
///
/// let gm = Region::new(Buffer::Gm, 0, 256);
/// let ub = Region::new(Buffer::Ub, 0, 256);
/// let mut b = KernelBuilder::new("relu");
/// let loaded = b.new_flag();
/// b.transfer(TransferPath::GmToUb, gm, ub)?;
/// b.set_flag(Component::MteGm, loaded);
/// b.wait_flag(Component::Vector, loaded);
/// b.compute(ComputeUnit::Vector, Precision::Fp16, 128, vec![ub], vec![ub]);
/// let kernel = b.build();
/// assert_eq!(kernel.name(), "relu");
/// # Ok::<(), ascend_isa::IsaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    instructions: Vec<Instruction>,
    next_flag: u32,
}

impl KernelBuilder {
    /// Starts a kernel named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder { name: name.into(), instructions: Vec::new(), next_flag: 0 }
    }

    /// Allocates a fresh synchronization flag.
    pub fn new_flag(&mut self) -> FlagId {
        let flag = FlagId::new(self.next_flag);
        self.next_flag += 1;
        flag
    }

    /// Appends an already-constructed instruction.
    pub fn push(&mut self, instruction: Instruction) -> &mut Self {
        self.instructions.push(instruction);
        self
    }

    /// Appends an MTE transfer of `src.len()` bytes along `path`.
    ///
    /// # Errors
    ///
    /// Returns an error when the regions do not match the path's endpoint
    /// buffers, the lengths differ, or the path is fixed-function.
    pub fn transfer(
        &mut self,
        path: TransferPath,
        src: Region,
        dst: Region,
    ) -> Result<&mut Self, IsaError> {
        if path.mte().is_none() {
            return Err(IsaError::DirectPathInKernel { path });
        }
        if src.buffer() != path.src() {
            return Err(IsaError::PathSourceMismatch { path, found: src.buffer() });
        }
        if dst.buffer() != path.dst() {
            return Err(IsaError::PathDestinationMismatch { path, found: dst.buffer() });
        }
        if src.len() != dst.len() {
            return Err(IsaError::TransferLengthMismatch {
                src_len: src.len(),
                dst_len: dst.len(),
            });
        }
        self.instructions.push(Instruction::Transfer(TransferInstr { path, src, dst }));
        Ok(self)
    }

    /// Appends a compute instruction of `ops` operations.
    pub fn compute(
        &mut self,
        unit: ComputeUnit,
        precision: Precision,
        ops: u64,
        reads: Vec<Region>,
        writes: Vec<Region>,
    ) -> &mut Self {
        self.instructions.push(Instruction::Compute(ComputeInstr {
            unit,
            precision,
            ops,
            reads,
            writes,
        }));
        self
    }

    /// Appends a `set_flag` executed on `queue`.
    pub fn set_flag(&mut self, queue: Component, flag: FlagId) -> &mut Self {
        self.instructions.push(Instruction::SetFlag { queue, flag });
        self
    }

    /// Appends a `wait_flag` blocking `queue`.
    pub fn wait_flag(&mut self, queue: Component, flag: FlagId) -> &mut Self {
        self.instructions.push(Instruction::WaitFlag { queue, flag });
        self
    }

    /// Appends a full pipe barrier (`pipe_barrier(PIPE_ALL)`).
    pub fn barrier_all(&mut self) -> &mut Self {
        self.instructions.push(Instruction::Barrier);
        self
    }

    /// Convenience: `set_flag` on `from` immediately followed by
    /// `wait_flag` on `to`, expressing a producer→consumer edge.
    pub fn sync(&mut self, from: Component, to: Component) -> &mut Self {
        let flag = self.new_flag();
        self.set_flag(from, flag);
        self.wait_flag(to, flag);
        self
    }

    /// Number of instructions appended so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether no instruction has been appended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Finishes the kernel.
    #[must_use]
    pub fn build(self) -> Kernel {
        Kernel { name: self.name, instructions: self.instructions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_arch::Buffer;

    #[test]
    fn builder_round_trip() {
        let gm = Region::new(Buffer::Gm, 0, 128);
        let ub = Region::new(Buffer::Ub, 0, 128);
        let mut b = KernelBuilder::new("k");
        b.transfer(TransferPath::GmToUb, gm, ub).unwrap();
        b.compute(ComputeUnit::Vector, Precision::Fp32, 32, vec![ub], vec![ub]);
        b.barrier_all();
        let k = b.build();
        assert_eq!(k.len(), 3);
        assert_eq!(k.name(), "k");
        assert_eq!(k.iter().count(), 3);
    }

    #[test]
    fn transfer_validation_rejects_wrong_buffers() {
        let gm = Region::new(Buffer::Gm, 0, 128);
        let l1 = Region::new(Buffer::L1, 0, 128);
        let mut b = KernelBuilder::new("bad");
        let err = b.transfer(TransferPath::GmToUb, gm, l1).unwrap_err();
        assert!(matches!(err, IsaError::PathDestinationMismatch { .. }));
        let err = b.transfer(TransferPath::UbToGm, gm, gm).unwrap_err();
        assert!(matches!(err, IsaError::PathSourceMismatch { .. }));
    }

    #[test]
    fn transfer_validation_rejects_length_mismatch() {
        let gm = Region::new(Buffer::Gm, 0, 128);
        let ub = Region::new(Buffer::Ub, 0, 256);
        let mut b = KernelBuilder::new("bad");
        let err = b.transfer(TransferPath::GmToUb, gm, ub).unwrap_err();
        assert_eq!(err, IsaError::TransferLengthMismatch { src_len: 128, dst_len: 256 });
    }

    #[test]
    fn direct_paths_are_rejected() {
        let l0a = Region::new(Buffer::L0A, 0, 128);
        let l0c = Region::new(Buffer::L0C, 0, 128);
        let mut b = KernelBuilder::new("bad");
        let err = b.transfer(TransferPath::L0AToCube, l0a, l0c).unwrap_err();
        assert_eq!(err, IsaError::DirectPathInKernel { path: TransferPath::L0AToCube });
    }

    #[test]
    fn flags_are_unique() {
        let mut b = KernelBuilder::new("k");
        let f1 = b.new_flag();
        let f2 = b.new_flag();
        assert_ne!(f1, f2);
    }

    #[test]
    fn sync_emits_matched_pair() {
        let mut b = KernelBuilder::new("k");
        b.sync(Component::MteGm, Component::Vector);
        let k = b.build();
        assert_eq!(k.len(), 2);
        assert!(matches!(
            k.instructions()[0],
            Instruction::SetFlag { queue: Component::MteGm, .. }
        ));
        assert!(matches!(
            k.instructions()[1],
            Instruction::WaitFlag { queue: Component::Vector, .. }
        ));
    }

    #[test]
    fn display_lists_every_instruction() {
        let mut b = KernelBuilder::new("show");
        b.sync(Component::MteGm, Component::Vector);
        let text = b.build().to_string();
        assert!(text.contains("kernel show"));
        assert!(text.contains("set flag0"));
        assert!(text.contains("wait flag0"));
    }
}
