//! A textual kernel format: assemble and disassemble [`Kernel`]s.
//!
//! The format is line-oriented; `#` starts a comment. A kernel is:
//!
//! ```text
//! kernel add_relu {
//!     move gm->ub gm[0:32768] ub[0:32768]
//!     set f0 @mte-gm
//!     wait f0 @vector
//!     vector.fp16 16384 reads ub[0:32768] writes ub[0:32768]
//!     barrier
//! }
//! ```
//!
//! - `move <path> <src-region> <dst-region>` — an MTE transfer;
//! - `<unit>.<precision> <ops> [reads r,…] [writes r,…]` — compute;
//! - `set f<N> @<queue>` / `wait f<N> @<queue>` — flag synchronization;
//! - `barrier` — `pipe_barrier(PIPE_ALL)`;
//! - regions are `<buffer>[<start>:<end>]` byte ranges (end exclusive).
//!
//! [`parse_kernel`] and [`kernel_to_text`] round-trip exactly.

use crate::{ComputeInstr, FlagId, Instruction, Kernel, Region, TransferInstr};
use ascend_arch::{Buffer, Component, ComputeUnit, Precision, TransferPath};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_buffer(s: &str, line: usize) -> Result<Buffer, ParseError> {
    Buffer::ALL
        .into_iter()
        .find(|b| b.name() == s)
        .ok_or_else(|| err(line, format!("unknown buffer `{s}`")))
}

fn parse_region(s: &str, line: usize) -> Result<Region, ParseError> {
    let open = s.find('[').ok_or_else(|| err(line, format!("malformed region `{s}`")))?;
    if !s.ends_with(']') {
        return Err(err(line, format!("malformed region `{s}`")));
    }
    let buffer = parse_buffer(&s[..open], line)?;
    let inner = &s[open + 1..s.len() - 1];
    let (a, b) =
        inner.split_once(':').ok_or_else(|| err(line, format!("region `{s}` needs start:end")))?;
    let start: u64 = a.parse().map_err(|_| err(line, format!("bad offset `{a}`")))?;
    let end: u64 = b.parse().map_err(|_| err(line, format!("bad offset `{b}`")))?;
    if end < start {
        return Err(err(line, format!("region `{s}` ends before it starts")));
    }
    Ok(Region::new(buffer, start, end - start))
}

fn parse_queue(s: &str, line: usize) -> Result<Component, ParseError> {
    let name =
        s.strip_prefix('@').ok_or_else(|| err(line, format!("queue `{s}` must start with @")))?;
    Component::ALL
        .into_iter()
        .find(|c| c.name() == name)
        .ok_or_else(|| err(line, format!("unknown queue `{name}`")))
}

fn parse_flag(s: &str, line: usize) -> Result<FlagId, ParseError> {
    let raw = s
        .strip_prefix('f')
        .and_then(|n| n.parse::<u32>().ok())
        .ok_or_else(|| err(line, format!("flag `{s}` must look like f0, f1, …")))?;
    Ok(FlagId::new(raw))
}

fn parse_path(s: &str, line: usize) -> Result<TransferPath, ParseError> {
    TransferPath::ALL
        .into_iter()
        .find(|p| p.name() == s)
        .ok_or_else(|| err(line, format!("unknown transfer path `{s}`")))
}

fn parse_regions_list(s: &str, line: usize) -> Result<Vec<Region>, ParseError> {
    s.split(',').filter(|p| !p.is_empty()).map(|p| parse_region(p.trim(), line)).collect()
}

fn parse_compute(head: &str, rest: &[&str], line: usize) -> Result<Instruction, ParseError> {
    let (unit_name, precision_name) = head
        .split_once('.')
        .ok_or_else(|| err(line, format!("compute `{head}` must be unit.precision")))?;
    let unit = ComputeUnit::ALL
        .into_iter()
        .find(|u| u.name() == unit_name)
        .ok_or_else(|| err(line, format!("unknown compute unit `{unit_name}`")))?;
    let precision = Precision::ALL
        .into_iter()
        .find(|p| p.mnemonic() == precision_name)
        .ok_or_else(|| err(line, format!("unknown precision `{precision_name}`")))?;
    let ops: u64 = rest
        .first()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(line, "compute needs an operation count"))?;
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    let mut i = 1;
    while i < rest.len() {
        match rest[i] {
            "reads" => {
                i += 1;
                reads = parse_regions_list(
                    rest.get(i).ok_or_else(|| err(line, "`reads` needs regions"))?,
                    line,
                )?;
            }
            "writes" => {
                i += 1;
                writes = parse_regions_list(
                    rest.get(i).ok_or_else(|| err(line, "`writes` needs regions"))?,
                    line,
                )?;
            }
            other => return Err(err(line, format!("unexpected token `{other}`"))),
        }
        i += 1;
    }
    Ok(Instruction::Compute(ComputeInstr { unit, precision, ops, reads, writes }))
}

/// Parses the textual kernel format.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line. Note that parsing
/// does **not** validate against a chip — run
/// [`validate`](crate::validate) afterwards.
///
/// # Examples
///
/// ```
/// let kernel = ascend_isa::parse_kernel(
///     "kernel demo {\n  move gm->ub gm[0:64] ub[0:64]\n}",
/// )?;
/// assert_eq!(kernel.name(), "demo");
/// assert_eq!(kernel.len(), 1);
/// # Ok::<(), ascend_isa::text::ParseError>(())
/// ```
pub fn parse_kernel(source: &str) -> Result<Kernel, ParseError> {
    let mut name: Option<String> = None;
    let mut instructions = Vec::new();
    let mut closed = false;
    for (i, raw_line) in source.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if name.is_none() {
            match tokens.as_slice() {
                ["kernel", kernel_name, "{"] => {
                    name = Some((*kernel_name).to_owned());
                    continue;
                }
                _ => return Err(err(line_no, "expected `kernel <name> {`")),
            }
        }
        if closed {
            return Err(err(line_no, "content after closing `}`"));
        }
        match tokens.as_slice() {
            ["}"] => closed = true,
            ["barrier"] => instructions.push(Instruction::Barrier),
            ["move", path, src, dst] => {
                let path = parse_path(path, line_no)?;
                let src = parse_region(src, line_no)?;
                let dst = parse_region(dst, line_no)?;
                if src.len() != dst.len() {
                    return Err(err(line_no, "transfer source/destination lengths differ"));
                }
                instructions.push(Instruction::Transfer(TransferInstr { path, src, dst }));
            }
            ["set", flag, queue] => instructions.push(Instruction::SetFlag {
                queue: parse_queue(queue, line_no)?,
                flag: parse_flag(flag, line_no)?,
            }),
            ["wait", flag, queue] => instructions.push(Instruction::WaitFlag {
                queue: parse_queue(queue, line_no)?,
                flag: parse_flag(flag, line_no)?,
            }),
            [head, rest @ ..] if head.contains('.') => {
                instructions.push(parse_compute(head, rest, line_no)?);
            }
            _ => return Err(err(line_no, format!("unrecognized statement `{line}`"))),
        }
    }
    let Some(name) = name else {
        return Err(err(1, "missing `kernel <name> {` header"));
    };
    if !closed {
        return Err(err(source.lines().count(), "missing closing `}`"));
    }
    Ok(Kernel::from_parts(name, instructions))
}

fn region_to_text(region: &Region) -> String {
    format!("{}[{}:{}]", region.buffer(), region.offset(), region.end())
}

/// Renders a kernel in the textual format accepted by [`parse_kernel`];
/// the two functions round-trip exactly.
#[must_use]
pub fn kernel_to_text(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "kernel {} {{", kernel.name());
    for instr in kernel {
        match instr {
            Instruction::Transfer(t) => {
                let _ = writeln!(
                    out,
                    "    move {} {} {}",
                    t.path,
                    region_to_text(&t.src),
                    region_to_text(&t.dst)
                );
            }
            Instruction::Compute(c) => {
                let _ = write!(out, "    {}.{} {}", c.unit, c.precision, c.ops);
                if !c.reads.is_empty() {
                    let list: Vec<String> = c.reads.iter().map(region_to_text).collect();
                    let _ = write!(out, " reads {}", list.join(","));
                }
                if !c.writes.is_empty() {
                    let list: Vec<String> = c.writes.iter().map(region_to_text).collect();
                    let _ = write!(out, " writes {}", list.join(","));
                }
                let _ = writeln!(out);
            }
            Instruction::SetFlag { queue, flag } => {
                let _ = writeln!(out, "    set f{} @{}", flag.raw(), queue);
            }
            Instruction::WaitFlag { queue, flag } => {
                let _ = writeln!(out, "    wait f{} @{}", flag.raw(), queue);
            }
            Instruction::Barrier => {
                let _ = writeln!(out, "    barrier");
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelBuilder;

    const SAMPLE: &str = "\
# Add_ReLU-style tile
kernel demo {
    move gm->ub gm[0:32768] ub[0:32768]   # load
    set f0 @mte-gm
    wait f0 @vector
    vector.fp16 16384 reads ub[0:32768] writes ub[0:32768]
    set f1 @vector
    wait f1 @mte-ub
    move ub->gm ub[0:32768] gm[65536:98304]
    barrier
}";

    #[test]
    fn parses_the_sample() {
        let kernel = parse_kernel(SAMPLE).unwrap();
        assert_eq!(kernel.name(), "demo");
        assert_eq!(kernel.len(), 8);
        assert!(matches!(kernel.instructions()[0], Instruction::Transfer(_)));
        assert!(matches!(kernel.instructions()[7], Instruction::Barrier));
    }

    #[test]
    fn round_trips_exactly() {
        let kernel = parse_kernel(SAMPLE).unwrap();
        let text = kernel_to_text(&kernel);
        let back = parse_kernel(&text).unwrap();
        assert_eq!(kernel, back);
        // And a builder-made kernel round-trips too.
        let mut b = KernelBuilder::new("built");
        let gm = Region::new(Buffer::Gm, 0, 128);
        let ub = Region::new(Buffer::Ub, 0, 128);
        b.transfer(TransferPath::GmToUb, gm, ub).unwrap();
        b.sync(Component::MteGm, Component::Cube);
        b.compute(ComputeUnit::Cube, Precision::Int8, 4096, vec![ub], vec![]);
        b.barrier_all();
        let kernel = b.build();
        assert_eq!(parse_kernel(&kernel_to_text(&kernel)).unwrap(), kernel);
    }

    #[test]
    fn parsed_kernels_validate_and_simulate() {
        let chip = ascend_arch::ChipSpec::training();
        let kernel = parse_kernel(SAMPLE).unwrap();
        crate::validate(&kernel, &chip).unwrap();
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let bad = "kernel x {\n    move nowhere gm[0:8] ub[0:8]\n}";
        let e = parse_kernel(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("nowhere"));

        let bad = "kernel x {\n    move gm->ub gm[0:8] ub[0:16]\n}";
        let e = parse_kernel(bad).unwrap_err();
        assert!(e.message.contains("lengths differ"));

        let bad = "kernel x {\n    vector.fp64 8\n}";
        assert!(parse_kernel(bad).is_ok(), "precision checked at validate, not parse");

        let bad = "move gm->ub gm[0:8] ub[0:8]";
        assert!(parse_kernel(bad).unwrap_err().message.contains("kernel <name>"));

        let bad = "kernel x {\n    move gm->ub gm[0:8] ub[0:8]";
        assert!(parse_kernel(bad).unwrap_err().message.contains("closing"));

        let bad = "kernel x {\n}\nbarrier";
        assert!(parse_kernel(bad).unwrap_err().message.contains("after closing"));
    }

    #[test]
    fn region_errors_are_specific() {
        for (text, needle) in [
            ("kernel x {\n    move gm->ub gm[8:0] ub[0:8]\n}", "ends before"),
            ("kernel x {\n    move gm->ub gm(0:8) ub[0:8]\n}", "malformed region"),
            ("kernel x {\n    move gm->ub gm[a:8] ub[0:8]\n}", "bad offset"),
            ("kernel x {\n    wait g0 @vector\n}", "must look like f0"),
            ("kernel x {\n    wait f0 vector\n}", "must start with @"),
        ] {
            let e = parse_kernel(text).unwrap_err();
            assert!(e.message.contains(needle), "{text} -> {e}");
        }
    }
}
