//! Buffer regions and capacity-checked bump allocation.

use crate::IsaError;
use ascend_arch::{Buffer, ChipSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A byte range inside one on-chip buffer.
///
/// Regions are the unit of memory bookkeeping: transfer instructions name a
/// source and a destination region, compute instructions declare the
/// regions they read and write, and the simulator serializes instructions
/// whose regions conflict (the paper's *spatial dependency*).
///
/// # Examples
///
/// ```
/// use ascend_arch::Buffer;
/// use ascend_isa::Region;
///
/// let a = Region::new(Buffer::Ub, 0, 1024);
/// let b = Region::new(Buffer::Ub, 512, 1024);
/// let c = Region::new(Buffer::Ub, 1024, 512);
/// assert!(a.overlaps(&b));
/// assert!(!a.overlaps(&c));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Region {
    buffer: Buffer,
    offset: u64,
    len: u64,
}

impl Region {
    /// Creates a region of `len` bytes at `offset` inside `buffer`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` overflows `u64`.
    #[must_use]
    pub fn new(buffer: Buffer, offset: u64, len: u64) -> Self {
        assert!(offset.checked_add(len).is_some(), "region end must not overflow u64");
        Region { buffer, offset, len }
    }

    /// The buffer this region lives in.
    #[must_use]
    pub fn buffer(&self) -> Buffer {
        self.buffer
    }

    /// Byte offset of the region start.
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One-past-the-end offset.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// Whether two regions share at least one byte.
    #[must_use]
    pub fn overlaps(&self, other: &Region) -> bool {
        self.buffer == other.buffer
            && !self.is_empty()
            && !other.is_empty()
            && self.offset < other.end()
            && other.offset < self.end()
    }

    /// A sub-region of `len` bytes starting `delta` bytes into this region.
    ///
    /// # Panics
    ///
    /// Panics if the slice does not fit inside the region.
    #[must_use]
    pub fn slice(&self, delta: u64, len: u64) -> Region {
        assert!(
            delta + len <= self.len,
            "slice [{delta}, {}) exceeds region of {} bytes",
            delta + len,
            self.len
        );
        Region::new(self.buffer, self.offset + delta, len)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}..{}]", self.buffer, self.offset, self.end())
    }
}

/// A capacity-checked bump allocator over all buffers of one chip.
///
/// Mirrors how Ascend kernel authors statically partition the on-chip
/// buffers. Allocation never frees; use [`BufferAllocator::reset`] to reuse
/// a buffer from scratch (e.g. between kernels), or [`BufferAllocator::mark`]
/// / [`BufferAllocator::release_to`] for stack-style reuse.
///
/// # Examples
///
/// ```
/// use ascend_arch::{Buffer, ChipSpec};
/// use ascend_isa::BufferAllocator;
///
/// let chip = ChipSpec::training();
/// let mut alloc = BufferAllocator::new(&chip);
/// let a = alloc.alloc(Buffer::Ub, 4096)?;
/// let b = alloc.alloc(Buffer::Ub, 4096)?;
/// assert!(!a.overlaps(&b));
/// # Ok::<(), ascend_isa::IsaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BufferAllocator {
    capacities: Vec<(Buffer, u64)>,
    cursors: Vec<(Buffer, u64)>,
}

impl BufferAllocator {
    /// Creates an allocator sized from `chip`'s buffer capacities.
    #[must_use]
    pub fn new(chip: &ChipSpec) -> Self {
        let capacities: Vec<(Buffer, u64)> =
            Buffer::ALL.into_iter().map(|b| (b, chip.capacity(b).unwrap_or(0))).collect();
        let cursors = Buffer::ALL.into_iter().map(|b| (b, 0)).collect();
        BufferAllocator { capacities, cursors }
    }

    fn cursor_mut(&mut self, buffer: Buffer) -> &mut u64 {
        // Construction seeds a cursor for every `Buffer::ALL` entry; a
        // miss can only mean a Buffer variant newer than this allocator,
        // which starts empty instead of panicking.
        let index = match self.cursors.iter().position(|(b, _)| *b == buffer) {
            Some(index) => index,
            None => {
                self.cursors.push((buffer, 0));
                self.cursors.len() - 1
            }
        };
        &mut self.cursors[index].1
    }

    /// Capacity of `buffer` in bytes (zero for a buffer the chip does
    /// not describe).
    #[must_use]
    pub fn capacity(&self, buffer: Buffer) -> u64 {
        self.capacities.iter().find(|(b, _)| *b == buffer).map_or(0, |(_, capacity)| *capacity)
    }

    /// Bytes already allocated in `buffer`.
    #[must_use]
    pub fn used(&self, buffer: Buffer) -> u64 {
        self.cursors.iter().find(|(b, _)| *b == buffer).map_or(0, |(_, used)| *used)
    }

    /// Bytes still available in `buffer`.
    #[must_use]
    pub fn remaining(&self, buffer: Buffer) -> u64 {
        self.capacity(buffer) - self.used(buffer)
    }

    /// Allocates `len` bytes in `buffer`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::OutOfBufferSpace`] when the buffer cannot hold
    /// `len` more bytes.
    pub fn alloc(&mut self, buffer: Buffer, len: u64) -> Result<Region, IsaError> {
        let capacity = self.capacity(buffer);
        let cursor = self.cursor_mut(buffer);
        if capacity.saturating_sub(*cursor) < len {
            return Err(IsaError::OutOfBufferSpace {
                buffer,
                requested: len,
                available: capacity - *cursor,
            });
        }
        let region = Region::new(buffer, *cursor, len);
        *cursor += len;
        Ok(region)
    }

    /// Splits `len * 2` bytes of `buffer` into a ping/pong region pair for
    /// double buffering (the paper's Ping-pong Policy).
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::OutOfBufferSpace`] when `2 * len` bytes are not
    /// available.
    pub fn alloc_ping_pong(&mut self, buffer: Buffer, len: u64) -> Result<[Region; 2], IsaError> {
        let ping = self.alloc(buffer, len)?;
        let pong = self.alloc(buffer, len)?;
        Ok([ping, pong])
    }

    /// Current allocation mark of `buffer` (for stack-style reuse).
    #[must_use]
    pub fn mark(&self, buffer: Buffer) -> u64 {
        self.used(buffer)
    }

    /// Releases all allocations of `buffer` made after `mark`.
    ///
    /// # Panics
    ///
    /// Panics if `mark` is beyond the current cursor.
    pub fn release_to(&mut self, buffer: Buffer, mark: u64) {
        let cursor = self.cursor_mut(buffer);
        assert!(mark <= *cursor, "cannot release forward");
        *cursor = mark;
    }

    /// Resets one buffer to empty.
    pub fn reset(&mut self, buffer: Buffer) {
        *self.cursor_mut(buffer) = 0;
    }

    /// Resets every buffer to empty.
    pub fn reset_all(&mut self) {
        for (_, cursor) in &mut self.cursors {
            *cursor = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_symmetric_and_reflexive_for_nonempty() {
        let a = Region::new(Buffer::Ub, 0, 8);
        let b = Region::new(Buffer::Ub, 4, 8);
        assert!(a.overlaps(&a));
        assert!(a.overlaps(&b) && b.overlaps(&a));
    }

    #[test]
    fn different_buffers_never_overlap() {
        let a = Region::new(Buffer::Ub, 0, 1024);
        let b = Region::new(Buffer::L1, 0, 1024);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn empty_regions_never_overlap() {
        let a = Region::new(Buffer::Ub, 0, 0);
        let b = Region::new(Buffer::Ub, 0, 8);
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
    }

    #[test]
    fn adjacent_regions_do_not_overlap() {
        let a = Region::new(Buffer::Ub, 0, 8);
        let b = Region::new(Buffer::Ub, 8, 8);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn slice_stays_inside() {
        let a = Region::new(Buffer::L1, 100, 50);
        let s = a.slice(10, 20);
        assert_eq!(s.offset(), 110);
        assert_eq!(s.len(), 20);
        assert!(a.overlaps(&s));
    }

    #[test]
    #[should_panic(expected = "exceeds region")]
    fn slice_out_of_bounds_panics() {
        let _ = Region::new(Buffer::L1, 0, 10).slice(5, 10);
    }

    #[test]
    fn allocator_respects_capacity() {
        let chip = ChipSpec::training();
        let mut alloc = BufferAllocator::new(&chip);
        let cap = alloc.capacity(Buffer::L0A);
        assert!(alloc.alloc(Buffer::L0A, cap).is_ok());
        let err = alloc.alloc(Buffer::L0A, 1).unwrap_err();
        assert!(matches!(err, IsaError::OutOfBufferSpace { buffer: Buffer::L0A, .. }));
    }

    #[test]
    fn allocations_are_disjoint() {
        let chip = ChipSpec::training();
        let mut alloc = BufferAllocator::new(&chip);
        let regions: Vec<Region> =
            (0..8).map(|_| alloc.alloc(Buffer::Ub, 1 << 10).unwrap()).collect();
        for (i, a) in regions.iter().enumerate() {
            for b in &regions[i + 1..] {
                assert!(!a.overlaps(b));
            }
        }
    }

    #[test]
    fn ping_pong_halves_are_disjoint() {
        let chip = ChipSpec::training();
        let mut alloc = BufferAllocator::new(&chip);
        let [ping, pong] = alloc.alloc_ping_pong(Buffer::L1, 4096).unwrap();
        assert!(!ping.overlaps(&pong));
        assert_eq!(ping.len(), pong.len());
    }

    #[test]
    fn mark_and_release_reuse_space() {
        let chip = ChipSpec::training();
        let mut alloc = BufferAllocator::new(&chip);
        let _persistent = alloc.alloc(Buffer::Ub, 1024).unwrap();
        let mark = alloc.mark(Buffer::Ub);
        let tmp1 = alloc.alloc(Buffer::Ub, 2048).unwrap();
        alloc.release_to(Buffer::Ub, mark);
        let tmp2 = alloc.alloc(Buffer::Ub, 2048).unwrap();
        assert_eq!(tmp1, tmp2, "released space is handed out again");
    }
}
