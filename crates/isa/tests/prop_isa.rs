//! Property tests over regions, allocation, and kernel validation.

use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{validate, BufferAllocator, KernelBuilder, KernelStats, Region};
use proptest::prelude::*;

proptest! {
    #[test]
    fn allocations_never_overlap_and_respect_capacity(sizes in prop::collection::vec(1u64..8192, 1..24)) {
        let chip = ChipSpec::training();
        let mut alloc = BufferAllocator::new(&chip);
        let mut regions: Vec<Region> = Vec::new();
        for size in sizes {
            match alloc.alloc(Buffer::Ub, size) {
                Ok(region) => {
                    prop_assert_eq!(region.len(), size);
                    prop_assert!(region.end() <= chip.capacity(Buffer::Ub).unwrap());
                    for earlier in &regions {
                        prop_assert!(!region.overlaps(earlier));
                    }
                    regions.push(region);
                }
                Err(_) => {
                    prop_assert!(alloc.remaining(Buffer::Ub) < size);
                }
            }
        }
    }

    #[test]
    fn slice_is_always_contained(offset in 0u64..10_000, len in 1u64..10_000, d in 0u64..100) {
        let region = Region::new(Buffer::L1, offset, len);
        let delta = d % len;
        let sub_len = (len - delta).max(1).min(len - delta);
        if sub_len > 0 {
            let sub = region.slice(delta, sub_len);
            prop_assert!(sub.offset() >= region.offset());
            prop_assert!(sub.end() <= region.end());
            prop_assert!(sub.overlaps(&region));
        }
    }

    #[test]
    fn stats_bytes_equal_sum_of_transfers(tile_kib in 1u64..16, tiles in 1usize..32) {
        let mut b = KernelBuilder::new("prop");
        let tile = tile_kib * 1024;
        for i in 0..tiles as u64 {
            let gm = Region::new(Buffer::Gm, i * tile, tile);
            let ub = Region::new(Buffer::Ub, 0, tile);
            b.transfer(TransferPath::GmToUb, gm, ub).unwrap();
        }
        let stats = KernelStats::of(&b.build());
        prop_assert_eq!(stats.bytes_on_path(TransferPath::GmToUb), tile * tiles as u64);
        prop_assert_eq!(stats.bytes_of_component(Component::MteGm), tile * tiles as u64);
    }

    #[test]
    fn balanced_sync_chains_always_validate(pairs in 1usize..64) {
        let chip = ChipSpec::training();
        let mut b = KernelBuilder::new("chain");
        let ub = Region::new(Buffer::Ub, 0, 64);
        for _ in 0..pairs {
            b.compute(ComputeUnit::Vector, Precision::Fp16, 8, vec![], vec![ub]);
            b.sync(Component::Vector, Component::MteUb);
            b.transfer(TransferPath::UbToGm, ub, Region::new(Buffer::Gm, 0, 64)).unwrap();
            b.sync(Component::MteUb, Component::Vector);
        }
        // The final wait has a set before it in program order: valid.
        prop_assert!(validate(&b.build(), &chip).is_ok());
    }

    #[test]
    fn reversed_sync_pairs_are_deadlocks(n in 1usize..8) {
        // wait(A) ... set issued by the same queue that waits on B, and
        // vice versa: a guaranteed cycle regardless of n.
        let chip = ChipSpec::training();
        let mut b = KernelBuilder::new("cycle");
        let fa = b.new_flag();
        let fb = b.new_flag();
        for _ in 0..n {
            b.wait_flag(Component::Vector, fa);
        }
        b.set_flag(Component::Vector, fb);
        for _ in 0..n {
            b.wait_flag(Component::MteGm, fb);
        }
        b.set_flag(Component::MteGm, fa);
        // Waits may outnumber sets, or a cycle exists; either way invalid.
        prop_assert!(validate(&b.build(), &chip).is_err());
    }
}
