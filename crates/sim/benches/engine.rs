//! Criterion microbenches of the event loop's primitive costs, one
//! instruction pattern per group: pure dispatch/start/retire on a single
//! queue, flag set/wait handshakes between queues, and transfer-op cost
//! (descriptor-table duration math plus queue traffic). Each bench reuses
//! one [`Simulator`] across iterations, so the numbers reflect the pooled
//! warm-scratch path that batch and sweep callers hit — per-event cost,
//! not per-run setup.

use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{Kernel, KernelBuilder, Region};
use ascend_sim::{NullSink, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A straight-line compute chain on one queue: no flags, no regions, no
/// barriers — every event is dispatch, start, retire. The floor cost of
/// one event.
fn dispatch_chain(n: usize) -> Kernel {
    let mut b = KernelBuilder::new("dispatch_chain");
    for _ in 0..n {
        b.compute(ComputeUnit::Vector, Precision::Fp16, 256, vec![], vec![]);
    }
    b.build()
}

/// Producer/consumer handshake: each iteration is a transfer, a
/// `set_flag`/`wait_flag` pair, a compute, and the reverse pair — the
/// flag-table hot path (increment, try-consume, blocked-queue retry).
fn flag_handshake(n: usize) -> Kernel {
    let mut b = KernelBuilder::new("flag_handshake");
    for i in 0..n {
        let ub = Region::new(Buffer::Ub, (i as u64 % 32) * 1024, 1024);
        let gm = Region::new(Buffer::Gm, (i as u64 % 64) * 4096, 1024);
        b.transfer(TransferPath::GmToUb, gm, ub).unwrap();
        b.sync(Component::MteGm, Component::Vector);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 256, vec![ub], vec![ub]);
        b.sync(Component::Vector, Component::MteGm);
    }
    b.build()
}

/// A chain of GM→UB transfers: exercises the transfer arm of the
/// descriptor build (bytes, latency, overhead) and the MTE queue.
fn transfer_chain(n: usize) -> Kernel {
    let mut b = KernelBuilder::new("transfer_chain");
    for i in 0..n {
        let gm = Region::new(Buffer::Gm, (i as u64 % 64) * 4096, 4096);
        let ub = Region::new(Buffer::Ub, (i as u64 % 32) * 4096, 4096);
        b.transfer(TransferPath::GmToUb, gm, ub).unwrap();
    }
    b.build()
}

fn bench_engine(c: &mut Criterion) {
    let sim = Simulator::new(ChipSpec::training());
    let cases = [
        ("event_dispatch_1k", dispatch_chain(1000)),
        ("flag_set_wait_250x4", flag_handshake(250)),
        ("transfer_op_1k", transfer_chain(1000)),
    ];
    let mut group = c.benchmark_group("engine");
    for (name, kernel) in &cases {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut sink = NullSink;
                sim.simulate_unchecked_into(black_box(kernel), &mut sink).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
