//! Scenario tests: simulator edge cases beyond the happy path.

use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{KernelBuilder, Region};
use ascend_sim::{SimError, Simulator, StallCause};

fn sim() -> Simulator {
    Simulator::new(ChipSpec::training())
}

fn gm(offset: u64, len: u64) -> Region {
    Region::new(Buffer::Gm, offset, len)
}

fn ub(offset: u64, len: u64) -> Region {
    Region::new(Buffer::Ub, offset, len)
}

#[test]
fn single_instruction_kernel() {
    let mut b = KernelBuilder::new("one");
    b.compute(ComputeUnit::Scalar, Precision::Int32, 1, vec![], vec![]);
    let trace = sim().simulate(&b.build()).unwrap();
    assert_eq!(trace.records().len(), 1);
    let chip = ChipSpec::training();
    let expected = chip.dispatch_cycles + chip.compute_issue_cycles + 0.25;
    assert!((trace.total_cycles() - expected).abs() < 1e-9);
}

#[test]
fn barrier_only_kernels_are_rejected_or_trivial() {
    // A kernel of only barriers is legal: each resolves instantly.
    let mut b = KernelBuilder::new("barriers");
    b.barrier_all();
    b.barrier_all();
    b.barrier_all();
    let trace = sim().simulate(&b.build()).unwrap();
    assert_eq!(trace.records().len(), 3);
    let chip = ChipSpec::training();
    assert!((trace.total_cycles() - 3.0 * chip.barrier_cycles).abs() < 1e-9);
}

#[test]
fn zero_byte_transfer_costs_only_latency_and_overhead() {
    let mut b = KernelBuilder::new("zero");
    b.transfer(TransferPath::GmToUb, gm(0, 0), ub(0, 0)).unwrap();
    let trace = sim().simulate(&b.build()).unwrap();
    let chip = ChipSpec::training();
    let spec = chip.transfer(TransferPath::GmToUb).unwrap();
    assert!((trace.total_cycles() - (chip.dispatch_cycles + spec.cycles(0))).abs() < 1e-9);
}

#[test]
fn zero_op_compute_costs_only_issue() {
    let mut b = KernelBuilder::new("noop");
    b.compute(ComputeUnit::Vector, Precision::Fp16, 0, vec![], vec![]);
    let trace = sim().simulate(&b.build()).unwrap();
    let chip = ChipSpec::training();
    assert!(
        (trace.total_cycles() - (chip.dispatch_cycles + chip.compute_issue_cycles)).abs() < 1e-9
    );
}

#[test]
fn one_set_satisfies_exactly_one_wait() {
    // Counting semantics: two waits need two sets; with two sets both
    // waits proceed. The validator conservatively rejects unordered
    // repeated waits, so exercise the engine's counting directly.
    let mut b = KernelBuilder::new("count");
    let f = b.new_flag();
    b.set_flag(Component::MteGm, f);
    b.set_flag(Component::MteGm, f);
    b.wait_flag(Component::Vector, f);
    b.wait_flag(Component::Cube, f);
    let trace = sim().simulate_unchecked(&b.build()).unwrap();
    assert_eq!(trace.records().len(), 4);
}

#[test]
fn flag_stall_is_attributed() {
    let mut b = KernelBuilder::new("stall");
    let f = b.new_flag();
    // The wait is dispatched first but must idle until the slow transfer
    // completes and sets the flag.
    b.wait_flag(Component::Vector, f);
    b.transfer(TransferPath::GmToUb, gm(0, 1 << 20), ub(0, 1 << 18)).unwrap_err();
    b.transfer(TransferPath::GmToUb, gm(0, 1 << 17), ub(0, 1 << 17)).unwrap();
    b.set_flag(Component::MteGm, f);
    let trace = sim().simulate(&b.build()).unwrap();
    let wait = trace.records()[0];
    assert_eq!(wait.stall, StallCause::Flag);
    assert!(wait.queue_delay() > 1000.0, "delay {:.0}", wait.queue_delay());
}

#[test]
fn queue_busy_stall_is_attributed() {
    let mut b = KernelBuilder::new("busy");
    b.transfer(TransferPath::GmToUb, gm(0, 1 << 16), ub(0, 1 << 16)).unwrap();
    b.transfer(TransferPath::GmToUb, gm(1 << 16, 1 << 16), ub(1 << 16, 1 << 16)).unwrap();
    let trace = sim().simulate(&b.build()).unwrap();
    assert_eq!(trace.records()[1].stall, StallCause::QueueBusy);
}

#[test]
fn deep_pipelines_terminate_quickly() {
    // A thousand tiles with full sync chains: the event loop must stay
    // near-linear.
    let mut b = KernelBuilder::new("deep");
    for i in 0..1000u64 {
        let tile = 4096;
        b.transfer(TransferPath::GmToUb, gm(i * tile, tile), ub((i % 2) * tile, tile)).unwrap();
        b.sync(Component::MteGm, Component::Vector);
        b.compute(
            ComputeUnit::Vector,
            Precision::Fp16,
            128,
            vec![ub((i % 2) * tile, tile)],
            vec![ub(2 * tile + (i % 2) * tile, tile)],
        );
        b.sync(Component::Vector, Component::MteUb);
        b.transfer(
            TransferPath::UbToGm,
            ub(2 * tile + (i % 2) * tile, tile),
            gm((1000 + i) * tile, tile),
        )
        .unwrap();
    }
    let kernel = b.build();
    let start = std::time::Instant::now();
    let trace = sim().simulate(&kernel).unwrap();
    assert_eq!(trace.records().len(), kernel.len());
    assert!(
        start.elapsed().as_secs_f64() < 10.0,
        "7000-instruction kernel must simulate fast, took {:?}",
        start.elapsed()
    );
}

#[test]
fn error_kernels_do_not_panic() {
    let empty = KernelBuilder::new("empty").build();
    assert!(matches!(sim().simulate(&empty), Err(SimError::Validation(_))));

    let mut hang = KernelBuilder::new("hang");
    let f = hang.new_flag();
    hang.wait_flag(Component::Vector, f);
    assert!(matches!(sim().simulate(&hang.build()), Err(SimError::Validation(_))));
}

#[test]
fn traces_of_identical_kernels_are_identical_across_simulators() {
    let chip = ChipSpec::training();
    let mut b = KernelBuilder::new("det");
    b.transfer(TransferPath::GmToUb, gm(0, 8192), ub(0, 8192)).unwrap();
    b.sync(Component::MteGm, Component::Vector);
    b.compute(ComputeUnit::Vector, Precision::Fp32, 512, vec![ub(0, 8192)], vec![ub(0, 8192)]);
    let kernel = b.build();
    let a = Simulator::new(chip.clone()).simulate(&kernel).unwrap();
    let b2 = Simulator::new(chip).simulate(&kernel).unwrap();
    assert_eq!(a, b2);
}
