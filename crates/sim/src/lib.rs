#![warn(missing_docs)]

//! Event-driven, component-level simulator of the Ascend AICore.
//!
//! The simulator executes a [`Kernel`](ascend_isa::Kernel) under the
//! execution semantics the paper derives from the hardware (Sections 2.1
//! and 3.1):
//!
//! - an in-order **dispatcher** hands instructions to the six component
//!   queues, paying a per-instruction dispatch cost (so instruction order
//!   matters — the *Adjusting Instruction Sequence* optimization);
//! - each **component queue** executes its instructions serially; distinct
//!   queues run in parallel;
//! - `set_flag`/`wait_flag` order queues against each other, and
//!   `pipe_barrier(ALL)` stalls dispatch until every queue drains (the
//!   *Removing Unnecessary Synchronization* optimization);
//! - instructions whose memory regions **conflict** (write-write or
//!   read-write overlap) serialize even across queues — the paper's
//!   *spatial dependency* (the *Reducing Spatial Dependency* optimization);
//! - transfers pay a granularity-dependent efficiency toll (the
//!   *Increasing Transfer Granularity* optimization), and every compute
//!   instruction pays a fixed issue cost (the *Adjusting Instruction
//!   Parameter* optimization).
//!
//! # Examples
//!
//! ```
//! use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
//! use ascend_isa::{KernelBuilder, Region};
//! use ascend_sim::Simulator;
//!
//! let chip = ChipSpec::training();
//! let gm = Region::new(Buffer::Gm, 0, 4096);
//! let ub = Region::new(Buffer::Ub, 0, 4096);
//! let mut b = KernelBuilder::new("load_compute");
//! b.transfer(TransferPath::GmToUb, gm, ub)?;
//! b.sync(ascend_arch::Component::MteGm, ascend_arch::Component::Vector);
//! b.compute(ComputeUnit::Vector, Precision::Fp16, 2048, vec![ub], vec![ub]);
//! let kernel = b.build();
//!
//! let sim = Simulator::new(chip);
//! let trace = sim.simulate(&kernel)?;
//! assert!(trace.total_cycles() > 0.0);
//! assert!(trace.busy_cycles(Component::Vector) > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cancel;
mod engine;
mod error;
mod forensics;
#[doc(hidden)]
pub mod reference;
mod sink;
mod trace;

pub use cancel::CancelToken;
pub use engine::{RunSummary, SimBudget, Simulator, DEADLINE_POLL_EVENTS};
pub use error::SimError;
pub use forensics::{
    BlockCause, DeadlockReport, PendingSetter, QueueState, SetterLocation, WaitEdge,
};
pub use sink::{MetricsSink, NullSink, TraceCollector, TraceSink};
pub use trace::{InstrRecord, StallCause, Trace};
