//! Streaming trace sinks: where the engine's per-instruction records go.
//!
//! The event loop produces one [`InstrRecord`] per executed instruction.
//! What happens to those records is the caller's choice, expressed as a
//! [`TraceSink`]:
//!
//! * [`TraceCollector`] materializes the full [`Trace`](crate::Trace) —
//!   unchanged public behavior, used by figures and forensics;
//! * [`MetricsSink`] folds records into the paper's §3.1 metric surface
//!   (ops per precision, bytes per path, component active time) on the
//!   fly, so profile-only callers never materialize a trace;
//! * [`NullSink`] discards records — pure cycle/throughput measurement;
//! * a `(A, B)` tuple feeds two sinks from one simulation pass.
//!
//! Records are emitted in **start order**: the moment the engine commits
//! an instruction to a queue slot its end time is known, so the record is
//! final. Within one component queue, start order equals program order
//! (queues are FIFO), which is what makes [`MetricsSink`]'s floating-point
//! accumulations bit-identical to the same sums taken over a sorted
//! [`Trace`](crate::Trace).

use crate::trace::InstrRecord;
use ascend_arch::{Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{Instruction, Kernel};
use std::collections::BTreeMap;

/// Consumer of the engine's per-instruction records.
///
/// Implementations must be prepared for [`begin`](TraceSink::begin) to be
/// called again after a previous run (successful or not): a sink is
/// reusable state, reset at `begin`, not a one-shot object.
pub trait TraceSink {
    /// Called once before execution starts, with the kernel about to run.
    /// Resets any state left over from a previous run.
    fn begin(&mut self, kernel: &Kernel) {
        let _ = kernel;
    }

    /// Called once per executed instruction, in start order, the moment
    /// its timing is final.
    fn emit(&mut self, instr: &Instruction, record: InstrRecord);
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn begin(&mut self, kernel: &Kernel) {
        (**self).begin(kernel);
    }

    fn emit(&mut self, instr: &Instruction, record: InstrRecord) {
        (**self).emit(instr, record);
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for (A, B) {
    fn begin(&mut self, kernel: &Kernel) {
        self.0.begin(kernel);
        self.1.begin(kernel);
    }

    fn emit(&mut self, instr: &Instruction, record: InstrRecord) {
        self.0.emit(instr, record);
        self.1.emit(instr, record);
    }
}

/// Discards every record. Use when only the run summary (total cycles,
/// event count) matters — e.g. raw engine throughput measurement.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _instr: &Instruction, _record: InstrRecord) {}
}

/// Materializes the full per-instruction trace, bit-identical to the
/// pre-sink engine's output: records indexed by program order.
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    slots: Vec<Option<InstrRecord>>,
}

impl TraceCollector {
    /// An empty collector (sized at [`begin`](TraceSink::begin)).
    #[must_use]
    pub fn new() -> Self {
        TraceCollector::default()
    }

    /// Consumes the collected records into a [`Trace`](crate::Trace).
    /// Call after a successful run; unfilled slots (possible only after
    /// an error) are skipped, matching the seed engine's flatten.
    #[must_use]
    pub fn into_trace(self, kernel_name: &str, total_cycles: f64) -> crate::Trace {
        let records: Vec<InstrRecord> = self.slots.into_iter().flatten().collect();
        crate::Trace::from_parts(kernel_name, records, total_cycles)
    }
}

impl TraceSink for TraceCollector {
    fn begin(&mut self, kernel: &Kernel) {
        self.slots.clear();
        self.slots.resize(kernel.len(), None);
    }

    fn emit(&mut self, _instr: &Instruction, record: InstrRecord) {
        self.slots[record.index] = Some(record);
    }
}

/// Folds records into the paper's §3.1 per-operator metric surface
/// without materializing a trace: operations per (unit, precision),
/// bytes per transfer path, and active cycles per component.
///
/// For a successful run these equal the same metrics derived from a full
/// [`Trace`](crate::Trace) plus the kernel's static stats — enforced by
/// the golden differential suite, not by inspection.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    kernel_name: String,
    /// Operation counts, direct-indexed by `[unit][precision]` — the
    /// emit path is one array add, no map probe. The map-shaped
    /// accessors rebuild the sparse views on demand (cold: once per
    /// profile, vs one emit per instruction).
    ops: [[u64; 5]; 3],
    /// Which `(unit, precision)` pairs executed, one bit per precision.
    /// A pair that executed with zero total ops must still appear in
    /// [`ops`](MetricsSink::ops) — `Profile::collect` derives the same
    /// map through `BTreeMap::entry`, which inserts on `+= 0`, and the
    /// two must match bit-for-bit.
    ops_seen: [u8; 3],
    /// Byte counts, direct-indexed by transfer path.
    bytes: [u64; 20],
    /// Which paths executed (same zero-total caveat as `ops_seen`).
    bytes_seen: u32,
    active: [f64; 6],
    instruction_count: u64,
}

impl MetricsSink {
    /// An empty sink (reset at [`begin`](TraceSink::begin)).
    #[must_use]
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// Name of the kernel last run into this sink.
    #[must_use]
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// Operations per (unit, precision), from the executed instructions
    /// — only pairs that executed, the exact shape `Profile::collect`
    /// derives from a kernel.
    #[must_use]
    pub fn ops(&self) -> BTreeMap<(ComputeUnit, Precision), u64> {
        let mut map = BTreeMap::new();
        for unit in ComputeUnit::ALL {
            for precision in Precision::ALL {
                if self.ops_seen[unit as usize] & (1 << precision as usize) != 0 {
                    map.insert((unit, precision), self.ops[unit as usize][precision as usize]);
                }
            }
        }
        map
    }

    /// Bytes per transfer path, from the executed instructions — only
    /// paths that executed.
    #[must_use]
    pub fn bytes(&self) -> BTreeMap<TransferPath, u64> {
        TransferPath::ALL
            .into_iter()
            .filter(|&path| self.bytes_seen & (1 << path as usize) != 0)
            .map(|path| (path, self.bytes[path as usize]))
            .collect()
    }

    /// Active (executing) cycles of `component`.
    #[must_use]
    pub fn active_cycles(&self, component: Component) -> f64 {
        self.active[component.index()]
    }

    /// Active cycles per component, only components that executed —
    /// the exact shape `Profile::collect` produces from a trace.
    #[must_use]
    pub fn active_map(&self) -> BTreeMap<Component, f64> {
        Component::ALL
            .into_iter()
            .filter(|c| self.active[c.index()] > 0.0)
            .map(|c| (c, self.active[c.index()]))
            .collect()
    }

    /// Number of instructions in the kernel (set at `begin`).
    #[must_use]
    pub fn instruction_count(&self) -> u64 {
        self.instruction_count
    }
}

impl TraceSink for MetricsSink {
    fn begin(&mut self, kernel: &Kernel) {
        self.kernel_name.clear();
        self.kernel_name.push_str(kernel.name());
        self.ops = [[0; 5]; 3];
        self.ops_seen = [0; 3];
        self.bytes = [0; 20];
        self.bytes_seen = 0;
        self.active = [0.0; 6];
        self.instruction_count = kernel.len() as u64;
    }

    fn emit(&mut self, instr: &Instruction, record: InstrRecord) {
        match instr {
            Instruction::Compute(c) => {
                self.ops[c.unit as usize][c.precision as usize] += c.ops;
                self.ops_seen[c.unit as usize] |= 1 << c.precision as usize;
            }
            Instruction::Transfer(t) => {
                self.bytes[t.path as usize] += t.bytes();
                self.bytes_seen |= 1 << t.path as usize;
            }
            Instruction::SetFlag { .. } | Instruction::WaitFlag { .. } | Instruction::Barrier => {}
        }
        if let Some(queue) = record.queue {
            self.active[queue.index()] += record.duration();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use ascend_arch::{Buffer, ChipSpec};
    use ascend_isa::{KernelBuilder, Region};

    fn kernel() -> Kernel {
        let gm = Region::new(Buffer::Gm, 0, 8192);
        let ub = Region::new(Buffer::Ub, 0, 8192);
        let mut b = KernelBuilder::new("sinked");
        let loaded = b.new_flag();
        b.transfer(TransferPath::GmToUb, gm, ub).unwrap();
        b.set_flag(Component::MteGm, loaded);
        b.wait_flag(Component::Vector, loaded);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 4096, vec![ub], vec![ub]);
        b.build()
    }

    #[test]
    fn metrics_sink_matches_trace_derivation() {
        let sim = Simulator::new(ChipSpec::training());
        let kernel = kernel();
        let trace = sim.simulate(&kernel).unwrap();
        let mut metrics = MetricsSink::new();
        let summary = sim.simulate_into(&kernel, &mut metrics).unwrap();
        assert_eq!(summary.total_cycles, trace.total_cycles());
        assert_eq!(metrics.ops().get(&(ComputeUnit::Vector, Precision::Fp16)), Some(&4096));
        assert_eq!(metrics.bytes().get(&TransferPath::GmToUb), Some(&8192));
        for c in Component::ALL {
            assert_eq!(metrics.active_cycles(c), trace.busy_cycles(c), "{c}");
        }
        assert_eq!(metrics.instruction_count(), kernel.len() as u64);
        assert_eq!(metrics.kernel_name(), "sinked");
    }

    #[test]
    fn tuple_sink_feeds_both() {
        let sim = Simulator::new(ChipSpec::training());
        let kernel = kernel();
        let mut pair = (TraceCollector::new(), MetricsSink::new());
        let summary = sim.simulate_into(&kernel, &mut pair).unwrap();
        let (collector, metrics) = pair;
        let trace = collector.into_trace(kernel.name(), summary.total_cycles);
        assert_eq!(trace, sim.simulate(&kernel).unwrap());
        assert_eq!(metrics.active_cycles(Component::Vector), trace.busy_cycles(Component::Vector));
    }

    #[test]
    fn sinks_reset_at_begin() {
        let sim = Simulator::new(ChipSpec::training());
        let kernel = kernel();
        let mut metrics = MetricsSink::new();
        sim.simulate_into(&kernel, &mut metrics).unwrap();
        let once = metrics.clone();
        sim.simulate_into(&kernel, &mut metrics).unwrap();
        assert_eq!(metrics.ops(), once.ops(), "a reused sink must not double-count");
        assert_eq!(metrics.active_map(), once.active_map());
    }
}
