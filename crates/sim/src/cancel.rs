//! Cooperative cancellation of in-flight simulations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation handle checked inside the engine's event
/// loop, alongside the watchdog budget.
///
/// A supervisor holds one clone and the simulator another; flipping the
/// token (or letting its deadline lapse) makes the engine return
/// [`SimError::Cancelled`](crate::SimError::Cancelled) — with a forensics
/// snapshot of the preempted run — at the next event boundary, without
/// killing any thread. Cancellation is **cooperative**: a run that never
/// processes another event (it already drained its heap) completes
/// normally.
///
/// Clones share the cancellation flag; the optional deadline is fixed at
/// construction.
///
/// # Examples
///
/// ```
/// use ascend_sim::CancelToken;
///
/// let token = CancelToken::new();
/// let handle = token.clone();
/// assert!(!token.is_cancelled());
/// handle.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](CancelToken::cancel) is
    /// called on it (or a clone).
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally expires `timeout` from now — the
    /// per-item deadline primitive: no watchdog thread is needed, the
    /// engine notices the lapsed deadline from inside its own loop.
    #[must_use]
    pub fn with_timeout(timeout: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + timeout),
        }
    }

    /// A token expiring at `deadline`.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken { flag: Arc::new(AtomicBool::new(false)), deadline: Some(deadline) }
    }

    /// Requests cancellation (visible to every clone).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested explicitly. Cheap (one atomic
    /// load); safe to call every event.
    #[must_use]
    pub fn is_signalled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Whether the deadline (if any) has lapsed. Reads the wall clock, so
    /// the engine only polls this every few events.
    #[must_use]
    pub fn is_expired(&self) -> bool {
        self.deadline.is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// Whether the token is cancelled for either reason.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.is_signalled() || self.is_expired()
    }

    /// The configured deadline, when one exists.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// A child token sharing this token's cancellation flag but carrying
    /// its own deadline, `timeout` from now (tightened to the parent's
    /// deadline when the parent's is earlier).
    ///
    /// This is the supervision composition primitive: a service holds one
    /// parent token per lifetime (cancelled at drain) and derives a child
    /// per attempt, so a single [`cancel`](CancelToken::cancel) on the
    /// parent preempts every in-flight attempt while each attempt still
    /// enforces its own per-attempt deadline. Because the flag is shared,
    /// cancelling a child also cancels the parent — treat children as
    /// scoped views, not independent tokens.
    #[must_use]
    pub fn child_with_timeout(&self, timeout: Duration) -> CancelToken {
        let child_deadline = Instant::now() + timeout;
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline: Some(self.deadline.map_or(child_deadline, |d| d.min(child_deadline))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_signalled());
        assert!(a.is_cancelled());
        assert!(!a.is_expired(), "no deadline was configured");
    }

    #[test]
    fn zero_timeout_is_immediately_expired() {
        let token = CancelToken::with_timeout(Duration::ZERO);
        assert!(token.is_expired());
        assert!(token.is_cancelled());
        assert!(!token.is_signalled(), "expiry is not an explicit signal");
    }

    #[test]
    fn distant_deadline_does_not_cancel() {
        let token = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        assert!(token.deadline().is_some());
    }

    #[test]
    fn child_shares_the_parent_flag_both_ways() {
        let parent = CancelToken::new();
        let child = parent.child_with_timeout(Duration::from_secs(3600));
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_signalled(), "parent cancellation must reach the child");
        // The flag is shared, so a child cancel is visible on the parent
        // too — documented as scoped-view semantics.
        let parent = CancelToken::new();
        let child = parent.child_with_timeout(Duration::from_secs(3600));
        child.cancel();
        assert!(parent.is_signalled());
    }

    #[test]
    fn child_deadline_is_independent_of_the_parent_flag() {
        let parent = CancelToken::new();
        let child = parent.child_with_timeout(Duration::ZERO);
        assert!(child.is_expired(), "zero timeout expires immediately");
        assert!(!parent.is_cancelled(), "a lapsed child deadline must not cancel the parent");
    }

    #[test]
    fn child_inherits_an_earlier_parent_deadline() {
        let parent = CancelToken::with_timeout(Duration::ZERO);
        let child = parent.child_with_timeout(Duration::from_secs(3600));
        assert!(child.is_expired(), "the parent's earlier deadline must win");
    }
}
