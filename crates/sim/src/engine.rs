//! The discrete-event execution engine.

use crate::cancel::CancelToken;
use crate::forensics::{
    instr_text, BlockCause, DeadlockReport, PendingSetter, QueueState, SetterLocation, WaitEdge,
};
use crate::trace::StallCause;
use crate::{InstrRecord, SimError, Trace};
use ascend_arch::{ArchError, ChipSpec, Component};
use ascend_faults::FaultPlan;
use ascend_isa::{validate, Instruction, Kernel};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// How often (in processed events) the engine polls a cancellation
/// token's wall-clock deadline. The explicit cancellation *flag* is one
/// atomic load and is checked every event; the deadline reads the wall
/// clock, so it is only polled on the first event and every
/// `DEADLINE_POLL_EVENTS` thereafter. A lapsed deadline is therefore
/// observed within at most `DEADLINE_POLL_EVENTS` events — the bound the
/// service drain protocol's termination guarantee rests on.
pub const DEADLINE_POLL_EVENTS: u64 = 64;

/// Watchdog budgets bounding one simulation run.
///
/// The defaults are far beyond any legitimate kernel in this repository
/// (the largest operator sweeps finish in thousands of events and under a
/// billion cycles), so a tripped budget means a runaway run — typically a
/// fault-degraded chip crawling through transfers — rather than a slow
/// one. Tighten the budgets per simulator with
/// [`Simulator::with_budget`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimBudget {
    /// Maximum number of events the engine may process.
    pub max_events: u64,
    /// Maximum simulated cycle the engine may reach.
    pub max_cycles: f64,
}

impl Default for SimBudget {
    fn default() -> Self {
        SimBudget { max_events: 100_000_000, max_cycles: 1e15 }
    }
}

impl SimBudget {
    /// A budget that never trips (the pre-watchdog behavior).
    #[must_use]
    pub fn unlimited() -> Self {
        SimBudget { max_events: u64::MAX, max_cycles: f64::INFINITY }
    }
}

/// Simulates kernels on one chip.
///
/// See the [crate-level documentation](crate) for the execution semantics.
#[derive(Debug, Clone)]
pub struct Simulator {
    chip: ChipSpec,
    budget: SimBudget,
    cancel: Option<CancelToken>,
    /// Spec-invariant violation found at construction, surfaced on the
    /// first simulate call (keeps `new` infallible for the many call
    /// sites that construct from built-in specs).
    spec_error: Option<ArchError>,
}

impl Simulator {
    /// Creates a simulator for `chip`.
    ///
    /// The chip specification is checked immediately; if it violates an
    /// invariant (see [`ChipSpec::validate`]), every subsequent simulate
    /// call reports [`SimError::Arch`] instead of producing garbage
    /// cycles. Use [`Simulator::try_new`] to surface the problem at
    /// construction time.
    #[must_use]
    pub fn new(chip: ChipSpec) -> Self {
        let spec_error = chip.validate().err();
        Simulator { chip, budget: SimBudget::default(), cancel: None, spec_error }
    }

    /// Creates a simulator for `chip`, rejecting invalid specifications.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidSpec`] when the chip violates a
    /// construction invariant (non-positive frequency, zero bandwidth,
    /// empty rate tables, ...).
    pub fn try_new(chip: ChipSpec) -> Result<Self, ArchError> {
        chip.validate()?;
        Ok(Simulator { chip, budget: SimBudget::default(), cancel: None, spec_error: None })
    }

    /// Replaces the watchdog budget.
    #[must_use]
    pub fn with_budget(mut self, budget: SimBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a cooperative cancellation token, checked in the event
    /// loop alongside the budget. A cancelled (or deadline-expired)
    /// token makes every in-flight and future run on this simulator
    /// return [`SimError::Cancelled`] with a forensics snapshot.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, when one exists.
    #[must_use]
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The chip this simulator models.
    #[must_use]
    pub fn chip(&self) -> &ChipSpec {
        &self.chip
    }

    /// The watchdog budget in force.
    #[must_use]
    pub fn budget(&self) -> SimBudget {
        self.budget
    }

    /// Executes `kernel` and returns its trace.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Validation`] when the kernel fails static
    /// validation, [`SimError::Arch`] when the chip spec is invalid or
    /// it references rates missing from the spec,
    /// [`SimError::Deadlock`] if execution stalls (defensive; validation
    /// rules this out), and [`SimError::BudgetExceeded`] when the
    /// watchdog trips.
    pub fn simulate(&self, kernel: &Kernel) -> Result<Trace, SimError> {
        self.check_spec()?;
        validate(kernel, &self.chip)?;
        Run::new(kernel, &self.chip, self.budget, None, self.cancel.as_ref()).execute()
    }

    /// Executes `kernel` without static validation.
    ///
    /// This is the engine's raw entry point: kernels with broken
    /// synchronization run until they genuinely stall, producing a
    /// [`SimError::Deadlock`] with full forensics (or
    /// [`SimError::BudgetExceeded`] if they run away). The differential
    /// fuzzer uses it to compare the engine's verdict against the
    /// validator's.
    ///
    /// # Errors
    ///
    /// As [`Simulator::simulate`], minus [`SimError::Validation`].
    pub fn simulate_unchecked(&self, kernel: &Kernel) -> Result<Trace, SimError> {
        self.check_spec()?;
        Run::new(kernel, &self.chip, self.budget, None, self.cancel.as_ref()).execute()
    }

    /// Executes `kernel` under a fault plan.
    ///
    /// The plan's chip faults (degraded bandwidth) produce a derived
    /// chip, its kernel faults (dropped/duplicated `set_flag`s,
    /// truncation) produce a derived kernel, and its latency jitter
    /// perturbs every instruction duration. The derived kernel is *not*
    /// re-validated — injecting sync faults into valid kernels and
    /// watching the engine deadlock is the point — but the derived chip
    /// must still satisfy the spec invariants.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Arch`] when the faulted chip fails
    /// [`ChipSpec::validate`] (for example, bandwidth degraded to zero),
    /// plus everything [`Simulator::simulate_unchecked`] can return.
    pub fn simulate_with_faults(
        &self,
        kernel: &Kernel,
        plan: &FaultPlan,
    ) -> Result<Trace, SimError> {
        self.check_spec()?;
        let chip = plan.apply_to_chip(&self.chip);
        chip.validate()?;
        let kernel = plan.apply_to_kernel(kernel);
        Run::new(&kernel, &chip, self.budget, Some(plan), self.cancel.as_ref()).execute()
    }

    fn check_spec(&self) -> Result<(), SimError> {
        match &self.spec_error {
            Some(err) => Err(SimError::Arch(err.clone())),
            None => Ok(()),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// Instruction `index` finishes executing.
    Complete(usize),
    /// Re-examine the queues (a dispatched instruction became available).
    Wake,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then_with(|| match (self.kind, other.kind) {
            (EventKind::Complete(a), EventKind::Complete(b)) => a.cmp(&b),
            (EventKind::Complete(_), EventKind::Wake) => std::cmp::Ordering::Less,
            (EventKind::Wake, EventKind::Complete(_)) => std::cmp::Ordering::Greater,
            (EventKind::Wake, EventKind::Wake) => std::cmp::Ordering::Equal,
        })
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Run<'a> {
    kernel: &'a Kernel,
    chip: &'a ChipSpec,
    budget: SimBudget,
    faults: Option<&'a FaultPlan>,
    cancel: Option<&'a CancelToken>,
    /// Dispatcher timeline: when the next instruction can be dispatched.
    dispatch_free: f64,
    next_dispatch: usize,
    barrier_pending: bool,
    last_completion: f64,
    /// Simulated time of the most recently processed event.
    clock: f64,
    /// Per-component FIFO of dispatched instructions: (index, available-at).
    pending: [VecDeque<(usize, f64)>; 6],
    busy_until: [f64; 6],
    /// Last wake time scheduled per component (deduplicates wake events).
    wake_scheduled: [f64; 6],
    /// Indices of currently executing instructions (for region conflicts).
    executing: Vec<usize>,
    /// Last observed blocking cause of each queue's front instruction.
    block_reason: [Option<StallCause>; 6],
    flags: HashMap<u32, u64>,
    records: Vec<Option<InstrRecord>>,
    outstanding: usize,
    completed: usize,
    events: BinaryHeap<Reverse<Event>>,
}

impl<'a> Run<'a> {
    fn new(
        kernel: &'a Kernel,
        chip: &'a ChipSpec,
        budget: SimBudget,
        faults: Option<&'a FaultPlan>,
        cancel: Option<&'a CancelToken>,
    ) -> Self {
        Run {
            kernel,
            chip,
            budget,
            faults,
            cancel,
            dispatch_free: 0.0,
            next_dispatch: 0,
            barrier_pending: false,
            last_completion: 0.0,
            clock: 0.0,
            pending: Default::default(),
            busy_until: [0.0; 6],
            wake_scheduled: [-1.0; 6],
            executing: Vec::new(),
            block_reason: [None; 6],
            flags: HashMap::new(),
            records: vec![None; kernel.len()],
            outstanding: 0,
            completed: 0,
            events: BinaryHeap::new(),
        }
    }

    fn execute(mut self) -> Result<Trace, SimError> {
        self.dispatch();
        self.try_start_all(0.0)?;
        let mut processed: u64 = 0;
        while let Some(Reverse(event)) = self.events.pop() {
            let now = event.time;
            self.clock = now;
            processed += 1;
            if processed > self.budget.max_events || now > self.budget.max_cycles {
                return Err(SimError::BudgetExceeded {
                    events: processed,
                    cycles: now,
                    max_events: self.budget.max_events,
                    max_cycles: self.budget.max_cycles,
                });
            }
            if let Some(token) = self.cancel {
                // The explicit flag is one atomic load — check it every
                // event. The deadline reads the wall clock, so poll it
                // only every DEADLINE_POLL_EVENTS events (and on the
                // first).
                if token.is_signalled()
                    || (processed % DEADLINE_POLL_EVENTS == 1 && token.is_expired())
                {
                    return Err(SimError::Cancelled {
                        events: processed,
                        cycles: now,
                        forensics: Box::new(self.forensics()),
                    });
                }
            }
            if let EventKind::Complete(index) = event.kind {
                self.finish(index, now);
            }
            self.try_start_all(now)?;
        }
        if self.completed != self.kernel.len() || self.records.iter().any(Option::is_none) {
            return Err(SimError::Deadlock(Box::new(self.forensics())));
        }
        let records: Vec<InstrRecord> = self.records.into_iter().flatten().collect();
        let total = records.iter().map(|r| r.end).fold(0.0, f64::max);
        Ok(Trace::from_parts(self.kernel.name(), records, total))
    }

    /// Snapshots engine state into a [`DeadlockReport`]. Called at
    /// quiescence: the event heap is empty, so nothing is executing and
    /// every non-empty queue has a genuinely blocked front.
    fn forensics(&self) -> DeadlockReport {
        let instructions = self.kernel.instructions();
        let mut queues = Vec::new();
        let mut wait_edges = Vec::new();
        for component in Component::ALL {
            let q = component.index();
            let Some(&(front_index, _)) = self.pending[q].front() else {
                continue;
            };
            let instr = &instructions[front_index];
            let cause = match instr {
                Instruction::WaitFlag { flag, .. } => {
                    wait_edges.push(WaitEdge {
                        waiter: component,
                        flag: flag.raw(),
                        pending_setters: self.pending_setters(flag.raw()),
                    });
                    BlockCause::Flag { flag: flag.raw() }
                }
                Instruction::Compute(_) | Instruction::Transfer(_)
                    if self.has_region_conflict(front_index) =>
                {
                    let conflicting_with = self
                        .executing
                        .iter()
                        .copied()
                        .find(|&other| instr.conflicts_with(&instructions[other]))
                        .unwrap_or(front_index);
                    BlockCause::Region { conflicting_with }
                }
                _ => BlockCause::NotStarted,
            };
            queues.push(QueueState {
                queue: component,
                depth: self.pending[q].len(),
                front_index,
                front_instr: instr_text(instr),
                cause,
            });
        }
        DeadlockReport {
            kernel: self.kernel.name().to_string(),
            at_cycle: self.clock,
            total: self.kernel.len(),
            remaining: self.kernel.len() - self.completed,
            undispatched: self.kernel.len() - self.next_dispatch,
            barrier_pending: self.barrier_pending,
            queues,
            wait_edges,
        }
    }

    /// Every `set_flag` of `flag` that has not started (and therefore, at
    /// quiescence, never completed), with its location.
    fn pending_setters(&self, flag: u32) -> Vec<PendingSetter> {
        self.kernel
            .instructions()
            .iter()
            .enumerate()
            .filter(|&(i, instr)| {
                matches!(instr, Instruction::SetFlag { flag: f, .. } if f.raw() == flag)
                    && self.records[i].is_none()
            })
            .map(|(i, instr)| PendingSetter {
                index: i,
                location: if i >= self.next_dispatch {
                    SetterLocation::Undispatched
                } else {
                    instr.queue().map_or(SetterLocation::Undispatched, SetterLocation::Queued)
                },
            })
            .collect()
    }

    /// Dispatches instructions in program order until a barrier blocks or
    /// the kernel is exhausted.
    fn dispatch(&mut self) {
        while !self.barrier_pending && self.next_dispatch < self.kernel.len() {
            let index = self.next_dispatch;
            let instr = &self.kernel.instructions()[index];
            match instr.queue() {
                None => {
                    // pipe_barrier(ALL): wait for every dispatched
                    // instruction to finish before dispatching further.
                    if self.outstanding == 0 {
                        let start = self.dispatch_free.max(self.last_completion);
                        let end = start + self.chip.barrier_cycles;
                        self.records[index] = Some(InstrRecord {
                            index,
                            queue: None,
                            available_at: self.dispatch_free,
                            start,
                            end,
                            stall: StallCause::None,
                        });
                        self.dispatch_free = end;
                        self.completed += 1;
                        self.next_dispatch += 1;
                    } else {
                        self.barrier_pending = true;
                    }
                }
                Some(queue) => {
                    self.dispatch_free += self.chip.dispatch_cycles;
                    self.pending[queue.index()].push_back((index, self.dispatch_free));
                    self.outstanding += 1;
                    self.next_dispatch += 1;
                }
            }
        }
    }

    fn finish(&mut self, index: usize, now: f64) {
        self.executing.retain(|&i| i != index);
        self.outstanding -= 1;
        self.completed += 1;
        self.last_completion = self.last_completion.max(now);
        if let Instruction::SetFlag { flag, .. } = &self.kernel.instructions()[index] {
            *self.flags.entry(flag.raw()).or_default() += 1;
        }
        if self.barrier_pending && self.outstanding == 0 {
            self.barrier_pending = false;
            self.dispatch();
        }
    }

    fn try_start_all(&mut self, now: f64) -> Result<(), SimError> {
        for component in Component::ALL {
            self.try_start(component, now)?;
        }
        Ok(())
    }

    fn try_start(&mut self, component: Component, now: f64) -> Result<(), SimError> {
        let q = component.index();
        if self.busy_until[q] > now {
            return Ok(());
        }
        let Some(&(index, available)) = self.pending[q].front() else {
            return Ok(());
        };
        if available > now {
            self.schedule_wake(q, available);
            return Ok(());
        }
        let instr = &self.kernel.instructions()[index];
        match instr {
            Instruction::WaitFlag { flag, .. } => {
                let count = self.flags.entry(flag.raw()).or_default();
                if *count == 0 {
                    // Blocked; a future SetFlag completion retries us.
                    self.block_reason[q] = Some(StallCause::Flag);
                    return Ok(());
                }
                *count -= 1;
            }
            Instruction::Compute(_) | Instruction::Transfer(_) => {
                if self.has_region_conflict(index) {
                    // Blocked on a spatial dependency; the conflicting
                    // instruction's completion retries us.
                    self.block_reason[q] = Some(StallCause::Region);
                    return Ok(());
                }
            }
            Instruction::SetFlag { .. } => {}
            Instruction::Barrier => unreachable!("barriers are dispatcher-level"),
        }
        let stall = match self.block_reason[q].take() {
            Some(cause) => cause,
            None if now > available + 1e-9 => StallCause::QueueBusy,
            None => StallCause::None,
        };
        let mut duration = self.duration(instr)?;
        if let Some(plan) = self.faults {
            duration *= plan.latency_factor(index);
        }
        let end = now + duration;
        self.records[index] = Some(InstrRecord {
            index,
            queue: Some(component),
            available_at: available,
            start: now,
            end,
            stall,
        });
        self.busy_until[q] = end;
        self.pending[q].pop_front();
        self.executing.push(index);
        self.events.push(Reverse(Event { time: end, kind: EventKind::Complete(index) }));
        Ok(())
    }

    fn has_region_conflict(&self, index: usize) -> bool {
        let instr = &self.kernel.instructions()[index];
        self.executing.iter().any(|&other| instr.conflicts_with(&self.kernel.instructions()[other]))
    }

    fn schedule_wake(&mut self, q: usize, at: f64) {
        if self.wake_scheduled[q] == at {
            return;
        }
        self.wake_scheduled[q] = at;
        self.events.push(Reverse(Event { time: at, kind: EventKind::Wake }));
    }

    fn duration(&self, instr: &Instruction) -> Result<f64, SimError> {
        Ok(match instr {
            Instruction::Compute(c) => {
                let peak = self.chip.peak_ops_per_cycle(c.unit, c.precision)?;
                self.chip.compute_issue_cycles + c.ops as f64 / peak
            }
            Instruction::Transfer(t) => self.chip.transfer(t.path)?.cycles(t.bytes()),
            Instruction::SetFlag { .. } | Instruction::WaitFlag { .. } => self.chip.flag_cycles,
            Instruction::Barrier => unreachable!("barriers are dispatcher-level"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_arch::{Buffer, ComputeUnit, MteEngine, Precision, TransferPath};
    use ascend_isa::{KernelBuilder, Region};
    use std::time::Duration;

    fn sim() -> Simulator {
        Simulator::new(ChipSpec::training())
    }

    fn gm(offset: u64, len: u64) -> Region {
        Region::new(Buffer::Gm, offset, len)
    }

    fn ub(offset: u64, len: u64) -> Region {
        Region::new(Buffer::Ub, offset, len)
    }

    #[test]
    fn single_transfer_timing_matches_spec() {
        let sim = sim();
        let mut b = KernelBuilder::new("one");
        b.transfer(TransferPath::GmToUb, gm(0, 4096), ub(0, 4096)).unwrap();
        let trace = sim.simulate(&b.build()).unwrap();
        let spec = sim.chip().transfer(TransferPath::GmToUb).unwrap();
        let expected = sim.chip().dispatch_cycles + spec.cycles(4096);
        assert!((trace.total_cycles() - expected).abs() < 1e-9);
    }

    #[test]
    fn same_mte_serializes_different_mtes_parallelize() {
        let sim = sim();
        // Two GM loads: same MTE-GM queue -> serial.
        let mut b = KernelBuilder::new("serial");
        b.transfer(TransferPath::GmToUb, gm(0, 8192), ub(0, 8192)).unwrap();
        b.transfer(TransferPath::GmToUb, gm(8192, 8192), ub(8192, 8192)).unwrap();
        let serial = sim.simulate(&b.build()).unwrap().total_cycles();

        // A GM load and a UB store: different MTEs -> parallel.
        let mut b = KernelBuilder::new("parallel");
        b.transfer(TransferPath::GmToUb, gm(0, 8192), ub(0, 8192)).unwrap();
        b.transfer(TransferPath::UbToGm, ub(8192, 8192), gm(8192, 8192)).unwrap();
        let parallel = sim.simulate(&b.build()).unwrap().total_cycles();

        assert!(
            parallel < serial * 0.7,
            "cross-MTE transfers must overlap: parallel={parallel} serial={serial}"
        );
    }

    #[test]
    fn flags_enforce_order() {
        let sim = sim();
        let mut b = KernelBuilder::new("sync");
        let f = b.new_flag();
        // Vector waits for the load even though it is dispatched ready.
        b.wait_flag(ascend_arch::Component::Vector, f);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 1024, vec![ub(0, 2048)], vec![ub(0, 2048)]);
        b.transfer(TransferPath::GmToUb, gm(0, 2048), ub(0, 2048)).unwrap();
        b.set_flag(ascend_arch::Component::MteGm, f);
        let trace = sim.simulate(&b.build()).unwrap();
        let records = trace.records();
        // The compute (index 1) must start after the set_flag (index 3) ends.
        assert!(records[1].start >= records[3].end);
    }

    #[test]
    fn barrier_serializes_and_costs() {
        let sim = sim();
        let mut with_barrier = KernelBuilder::new("barrier");
        with_barrier.transfer(TransferPath::GmToUb, gm(0, 4096), ub(0, 4096)).unwrap();
        with_barrier.barrier_all();
        with_barrier.transfer(TransferPath::UbToGm, ub(4096, 4096), gm(8192, 4096)).unwrap();
        let barrier_time = sim.simulate(&with_barrier.build()).unwrap();

        let mut without = KernelBuilder::new("free");
        without.transfer(TransferPath::GmToUb, gm(0, 4096), ub(0, 4096)).unwrap();
        without.transfer(TransferPath::UbToGm, ub(4096, 4096), gm(8192, 4096)).unwrap();
        let free_time = sim.simulate(&without.build()).unwrap();

        assert!(barrier_time.total_cycles() > free_time.total_cycles());
        // With the barrier, the store starts after the load ends.
        let records = barrier_time.records();
        assert!(records[2].start >= records[0].end + sim.chip().barrier_cycles);
    }

    #[test]
    fn spatial_dependency_serializes_across_queues() {
        let sim = sim();
        // Store from ub[0..n] while loading into ub[0..n]: W/R conflict.
        let mut conflicted = KernelBuilder::new("conflict");
        conflicted.transfer(TransferPath::UbToGm, ub(0, 8192), gm(0, 8192)).unwrap();
        conflicted.transfer(TransferPath::GmToUb, gm(8192, 8192), ub(0, 8192)).unwrap();
        let conflict_trace = sim.simulate(&conflicted.build()).unwrap();
        let r = conflict_trace.records();
        assert!(r[1].start >= r[0].end, "conflicting transfers must serialize: {:?}", r);

        // Disjoint UB regions (RSD applied): they overlap in time.
        let mut free = KernelBuilder::new("rsd");
        free.transfer(TransferPath::UbToGm, ub(0, 8192), gm(0, 8192)).unwrap();
        free.transfer(TransferPath::GmToUb, gm(8192, 8192), ub(8192, 8192)).unwrap();
        let free_trace = sim.simulate(&free.build()).unwrap();
        let r = free_trace.records();
        assert!(r[1].start < r[0].end, "disjoint transfers should overlap");
        assert!(free_trace.total_cycles() < conflict_trace.total_cycles());
    }

    #[test]
    fn dispatch_cost_delays_later_instructions() {
        let sim = sim();
        let chip = sim.chip();
        let mut b = KernelBuilder::new("dispatch");
        for i in 0..10 {
            b.compute(ComputeUnit::Scalar, Precision::Int32, 1, vec![], vec![ub(i * 64, 64)]);
        }
        // A final transfer dispatched after 10 scalar instructions.
        b.transfer(TransferPath::GmToUb, gm(0, 64), ub(4096, 64)).unwrap();
        let trace = sim.simulate(&b.build()).unwrap();
        let records = trace.records();
        assert!(
            records[10].start >= 11.0 * chip.dispatch_cycles - 1e-9,
            "the transfer cannot start before the dispatcher reaches it"
        );
    }

    #[test]
    fn compute_issue_cost_penalizes_many_small_instructions() {
        let sim = sim();
        let total_ops: u64 = 98 * 1024;
        // repeat=1 style: 98 instructions of 1024 ops.
        let mut many = KernelBuilder::new("repeat1");
        for _ in 0..98 {
            many.compute(ComputeUnit::Vector, Precision::Fp16, 1024, vec![], vec![]);
        }
        // repeat=98 style: one instruction covering all ops.
        let mut one = KernelBuilder::new("repeat98");
        one.compute(ComputeUnit::Vector, Precision::Fp16, total_ops, vec![], vec![]);
        let many_t = sim.simulate(&many.build()).unwrap().total_cycles();
        let one_t = sim.simulate(&one.build()).unwrap().total_cycles();
        assert!(
            many_t > 2.0 * one_t,
            "issue overhead must dominate for tiny instructions: {many_t} vs {one_t}"
        );
    }

    #[test]
    fn every_instruction_is_recorded_once() {
        let sim = sim();
        let mut b = KernelBuilder::new("all");
        b.transfer(TransferPath::GmToUb, gm(0, 1024), ub(0, 1024)).unwrap();
        b.sync(ascend_arch::Component::MteGm, ascend_arch::Component::Vector);
        b.compute(ComputeUnit::Vector, Precision::Fp32, 256, vec![ub(0, 1024)], vec![ub(0, 1024)]);
        b.barrier_all();
        b.transfer(TransferPath::UbToGm, ub(0, 1024), gm(4096, 1024)).unwrap();
        let kernel = b.build();
        let trace = sim.simulate(&kernel).unwrap();
        assert_eq!(trace.records().len(), kernel.len());
        for (i, r) in trace.records().iter().enumerate() {
            assert_eq!(r.index, i);
            assert!(r.end >= r.start);
        }
    }

    #[test]
    fn total_time_is_at_least_the_busiest_queue() {
        let sim = sim();
        let mut b = KernelBuilder::new("bound");
        for i in 0..4 {
            b.transfer(TransferPath::GmToUb, gm(i * 4096, 4096), ub(i * 4096, 4096)).unwrap();
        }
        let trace = sim.simulate(&b.build()).unwrap();
        for c in Component::ALL {
            assert!(trace.total_cycles() >= trace.busy_cycles(c) - 1e-9);
        }
    }

    #[test]
    fn validation_failure_is_propagated() {
        let sim = sim();
        let kernel = KernelBuilder::new("empty").build();
        assert!(matches!(sim.simulate(&kernel), Err(SimError::Validation(_))));
    }

    #[test]
    fn invalid_spec_is_reported_not_simulated() {
        let mut chip = ChipSpec::training();
        chip.scale_bandwidth_unchecked(MteEngine::Gm, 0.0);
        let sim = Simulator::new(chip.clone());
        let mut b = KernelBuilder::new("doomed");
        b.transfer(TransferPath::GmToUb, gm(0, 1024), ub(0, 1024)).unwrap();
        let kernel = b.build();
        match sim.simulate(&kernel) {
            Err(SimError::Arch(ArchError::InvalidSpec { .. })) => {}
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        assert!(matches!(Simulator::try_new(chip), Err(ArchError::InvalidSpec { .. })));
    }

    #[test]
    fn unchecked_deadlock_carries_forensics() {
        let sim = sim();
        let mut b = KernelBuilder::new("stuck");
        let f = b.new_flag();
        // A wait with no matching set: validation would reject this.
        b.wait_flag(ascend_arch::Component::Vector, f);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 64, vec![], vec![]);
        let kernel = b.build();
        assert!(matches!(sim.simulate(&kernel), Err(SimError::Validation(_))));
        let Err(SimError::Deadlock(report)) = sim.simulate_unchecked(&kernel) else {
            panic!("unmatched wait must deadlock the engine");
        };
        assert_eq!(report.remaining, 2);
        assert_eq!(report.total, 2);
        let vector = report
            .queues
            .iter()
            .find(|q| q.queue == Component::Vector)
            .expect("vector queue must be stuck");
        assert_eq!(vector.front_index, 0);
        assert_eq!(vector.cause, BlockCause::Flag { flag: f.raw() });
        assert_eq!(report.wait_edges.len(), 1);
        assert!(report.wait_edges[0].pending_setters.is_empty(), "no setter exists");
        assert!(report.to_string().contains("the wait is unmatched"));
    }

    #[test]
    fn event_budget_trips_the_watchdog() {
        let sim = sim().with_budget(SimBudget { max_events: 4, max_cycles: f64::INFINITY });
        let mut b = KernelBuilder::new("busy");
        for i in 0..16 {
            b.transfer(TransferPath::GmToUb, gm(i * 1024, 1024), ub(i * 1024, 1024)).unwrap();
        }
        match sim.simulate(&b.build()) {
            Err(SimError::BudgetExceeded { events, max_events: 4, .. }) => {
                assert!(events > 4);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn cycle_budget_trips_the_watchdog() {
        let sim = sim().with_budget(SimBudget { max_events: u64::MAX, max_cycles: 1.0 });
        let mut b = KernelBuilder::new("slow");
        b.transfer(TransferPath::GmToUb, gm(0, 1 << 18), ub(0, 1 << 18)).unwrap();
        match sim.simulate(&b.build()) {
            Err(SimError::BudgetExceeded { cycles, .. }) => assert!(cycles > 1.0),
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn timing_faults_change_cycles_not_completion() {
        let sim = sim();
        let mut b = KernelBuilder::new("jitter");
        for i in 0..4 {
            b.transfer(TransferPath::GmToUb, gm(i * 4096, 4096), ub(i * 4096, 4096)).unwrap();
        }
        let kernel = b.build();
        let base = sim.simulate(&kernel).unwrap().total_cycles();
        let plan = ascend_faults::FaultPlan::new(7)
            .degrade_bandwidth(MteEngine::Gm, 0.5)
            .with_latency_jitter(0.2);
        let faulted = sim.simulate_with_faults(&kernel, &plan).unwrap();
        assert!(
            faulted.total_cycles() > base,
            "halved bandwidth must slow the kernel: {} vs {base}",
            faulted.total_cycles()
        );
    }

    #[test]
    fn dropped_set_flag_deadlocks_with_forensics() {
        let sim = sim();
        let mut b = KernelBuilder::new("sync");
        let f = b.new_flag();
        b.transfer(TransferPath::GmToUb, gm(0, 2048), ub(0, 2048)).unwrap();
        b.set_flag(ascend_arch::Component::MteGm, f);
        b.wait_flag(ascend_arch::Component::Vector, f);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 512, vec![ub(0, 2048)], vec![ub(0, 2048)]);
        let kernel = b.build();
        sim.simulate(&kernel).expect("the unfaulted kernel is valid");
        let plan = ascend_faults::FaultPlan::new(3).drop_set_flags(1);
        let Err(SimError::Deadlock(report)) = sim.simulate_with_faults(&kernel, &plan) else {
            panic!("dropping the only set_flag must deadlock");
        };
        assert!(report.queues.iter().any(|q| q.cause == BlockCause::Flag { flag: f.raw() }));
    }

    #[test]
    fn signalled_token_preempts_with_forensics() {
        let token = CancelToken::new();
        token.cancel();
        let sim = sim().with_cancel(token);
        let mut b = KernelBuilder::new("preempted");
        for i in 0..8 {
            b.transfer(TransferPath::GmToUb, gm(i * 1024, 1024), ub(i * 1024, 1024)).unwrap();
        }
        let kernel = b.build();
        let Err(err) = sim.simulate(&kernel) else {
            panic!("a pre-cancelled token must preempt the run");
        };
        assert!(err.is_transient());
        let SimError::Cancelled { events, forensics, .. } = &err else {
            panic!("expected Cancelled, got {err:?}");
        };
        assert!(*events >= 1, "the engine notices cancellation at an event boundary");
        assert_eq!(forensics.total, kernel.len());
        assert!(forensics.remaining > 0, "preemption leaves work incomplete");
        assert!(err.to_string().contains("cancelled"));
    }

    #[test]
    fn expired_deadline_preempts_the_run() {
        let sim = sim().with_cancel(CancelToken::with_timeout(std::time::Duration::ZERO));
        let mut b = KernelBuilder::new("late");
        for i in 0..8 {
            b.transfer(TransferPath::GmToUb, gm(i * 1024, 1024), ub(i * 1024, 1024)).unwrap();
        }
        match sim.simulate(&b.build()) {
            Err(SimError::Cancelled { .. }) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    /// A compute-only kernel of `n` instructions: no operands, so no
    /// buffer-capacity limit — an arbitrarily long event stream for
    /// cancellation-latency tests.
    fn long_kernel(n: usize) -> ascend_isa::Kernel {
        let mut b = KernelBuilder::new("long");
        for _ in 0..n {
            b.compute(ComputeUnit::Vector, Precision::Fp16, 64, vec![], vec![]);
        }
        b.build()
    }

    #[test]
    fn deadline_expiry_is_observed_within_the_poll_interval() {
        // A deadline far shorter than the kernel's wall-clock simulation
        // time must preempt the run mid-loop, and because the wall clock
        // is only polled every DEADLINE_POLL_EVENTS events, the preemption
        // event index always lands on a poll boundary — the documented
        // propagation-latency bound.
        let sim = sim().with_cancel(CancelToken::with_timeout(Duration::from_micros(200)));
        match sim.simulate(&long_kernel(1 << 16)) {
            Err(SimError::Cancelled { events, .. }) => {
                assert_eq!(
                    events % DEADLINE_POLL_EVENTS,
                    1,
                    "deadline expiry must be observed at a poll boundary, got event {events}"
                );
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn mid_run_cancel_is_observed_before_completion() {
        // The explicit flag is checked on *every* event, so a cancel
        // issued from another thread mid-loop preempts the run at the
        // next event boundary instead of letting it drain the heap.
        let token = CancelToken::new();
        let sim = sim().with_cancel(token.clone());
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(500));
            token.cancel();
        });
        let result = sim.simulate(&long_kernel(1 << 16));
        canceller.join().unwrap();
        match result {
            Err(SimError::Cancelled { events, forensics, .. }) => {
                assert!(forensics.remaining > 0, "preemption leaves work incomplete");
                assert!(events >= 1);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn untriggered_token_leaves_results_identical() {
        let mut b = KernelBuilder::new("same");
        b.transfer(TransferPath::GmToUb, gm(0, 4096), ub(0, 4096)).unwrap();
        b.sync(ascend_arch::Component::MteGm, ascend_arch::Component::Vector);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 1024, vec![ub(0, 4096)], vec![ub(0, 4096)]);
        let kernel = b.build();
        let plain = sim().simulate(&kernel).unwrap();
        let supervised = sim().with_cancel(CancelToken::new()).simulate(&kernel).unwrap();
        assert_eq!(plain.total_cycles(), supervised.total_cycles());
        assert_eq!(plain.records(), supervised.records());
    }
}
