//! The discrete-event execution engine.
//!
//! # Hot-path layout
//!
//! One simulate call used to construct a `HashMap` flag table, six
//! `VecDeque` component queues, a `BinaryHeap` event queue, and a
//! fully-materialized record arena — and drop them all at the end. The
//! engine now keeps that mutable state in an [`EngineScratch`] arena
//! owned by a pool on the [`Simulator`]: a run checks a scratch out,
//! sizes it once from the kernel (index-addressed flag counter table,
//! per-component head-pointer queues), and returns it when done, so
//! batch and sweep items amortize setup instead of reconstructing it.
//! Records stream to a caller-chosen [`TraceSink`](crate::TraceSink)
//! instead of always materializing a trace.
//!
//! The event queue itself is gone: each component queue holds a short
//! in-flight FIFO (almost always one entry — more only when an
//! instruction ends at exactly another event's timestamp) and at most
//! one live wake, so "pop the heap" becomes a scan over six FIFO
//! fronts and six `wake_at` slots that reproduces the old heap's `Ord`
//! exactly (earliest time; at equal times completions before wakes, by
//! ascending instruction index). Completion events re-attempt only the
//! queues whose blocking state can have changed — the freed queue,
//! flag-blocked queues when a `set_flag` completed, region-blocked
//! queues on any completion, and queues whose last start ends exactly
//! now (the strict busy test frees them mid-timestamp) — which is
//! faithful because a given front's block cause never changes
//! (`wait_flag` fronts only block on flags, compute/transfer fronts
//! only on regions) and flags and regions change only at completions.
//! Per-instruction durations come from [`DurationTables`], a
//! direct-indexed copy of the chip's rate tables built once per
//! simulator instead of linearly scanned per start.
//!
//! The loop itself barely touches the [`Instruction`] enum: a prepare
//! pass flattens each instruction into a 16-byte [`InstrDesc`] (kind,
//! queue, flag, precomputed duration), so dispatching, starting, and
//! retiring are dense array walks — each instruction starts at most
//! once per run, so precomputing its duration moves work out of the
//! loop rather than duplicating it. Only the (rare) spatial-conflict
//! checks still read the enum. The old engine is preserved verbatim in
//! [`reference`](crate::reference) and the golden differential suite
//! holds this one bit-identical to it.

use crate::cancel::CancelToken;
use crate::forensics::{
    instr_text, BlockCause, DeadlockReport, PendingSetter, QueueState, SetterLocation, WaitEdge,
};
use crate::sink::{TraceCollector, TraceSink};
use crate::trace::StallCause;
use crate::{InstrRecord, SimError, Trace};
use ascend_arch::{ArchError, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_faults::FaultPlan;
use ascend_isa::{validate, Instruction, Kernel};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Sentinel for "no instruction executing" in a per-queue exec slot.
const NO_INSTR: usize = usize::MAX;

/// How often (in processed events) the engine polls a cancellation
/// token's wall-clock deadline. The explicit cancellation *flag* is one
/// atomic load and is checked every event; the deadline reads the wall
/// clock, so it is only polled on the first event and every
/// `DEADLINE_POLL_EVENTS` thereafter. A lapsed deadline is therefore
/// observed within at most `DEADLINE_POLL_EVENTS` events — the bound the
/// service drain protocol's termination guarantee rests on.
pub const DEADLINE_POLL_EVENTS: u64 = 64;

/// Watchdog budgets bounding one simulation run.
///
/// The defaults are far beyond any legitimate kernel in this repository
/// (the largest operator sweeps finish in thousands of events and under a
/// billion cycles), so a tripped budget means a runaway run — typically a
/// fault-degraded chip crawling through transfers — rather than a slow
/// one. Tighten the budgets per simulator with
/// [`Simulator::with_budget`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimBudget {
    /// Maximum number of events the engine may process.
    pub max_events: u64,
    /// Maximum simulated cycle the engine may reach.
    pub max_cycles: f64,
}

impl Default for SimBudget {
    fn default() -> Self {
        SimBudget { max_events: 100_000_000, max_cycles: 1e15 }
    }
}

impl SimBudget {
    /// A budget that never trips (the pre-watchdog behavior).
    #[must_use]
    pub fn unlimited() -> Self {
        SimBudget { max_events: u64::MAX, max_cycles: f64::INFINITY }
    }
}

/// Summary of one engine run, returned by the `*_into` entry points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Completion cycle of the last instruction (the trace's
    /// `total_cycles`).
    pub total_cycles: f64,
    /// Events the event loop processed (completions and wakes) — the
    /// unit the watchdog budget and the throughput metrics count in.
    pub events: u64,
}

/// Flag ids below this bound live in the flat counter table; anything
/// larger (possible only through hand-written text kernels or
/// `FlagId::new`) falls back to a hash map. `KernelBuilder` allocates
/// flags densely from zero, so real kernels never touch the fallback.
const DENSE_FLAG_CAP: u32 = 1 << 16;

/// Counting-flag table: a flat `Vec<u64>` indexed by raw flag id, sized
/// once per run from the kernel's largest dense id, with a sparse
/// overflow map for pathological ids at or above [`DENSE_FLAG_CAP`].
#[derive(Debug, Default)]
struct FlagTable {
    dense: Vec<u64>,
    sparse: HashMap<u32, u64>,
}

impl FlagTable {
    /// Sizes the table for `kernel` and zeroes every counter.
    fn prepare(&mut self, kernel: &Kernel) {
        self.sparse.clear();
        let mut dense_len = 0u32;
        for instr in kernel.instructions() {
            if let Instruction::SetFlag { flag, .. } | Instruction::WaitFlag { flag, .. } = instr {
                let raw = flag.raw();
                if raw < DENSE_FLAG_CAP && raw >= dense_len {
                    dense_len = raw + 1;
                }
            }
        }
        self.dense.clear();
        self.dense.resize(dense_len as usize, 0);
    }

    #[inline]
    fn increment(&mut self, raw: u32) {
        match self.dense.get_mut(raw as usize) {
            Some(count) => *count += 1,
            None => *self.sparse.entry(raw).or_default() += 1,
        }
    }

    /// Consumes one increment of `raw` when available; `false` means the
    /// flag is at zero and the waiter stays blocked.
    #[inline]
    fn try_consume(&mut self, raw: u32) -> bool {
        let count = match self.dense.get_mut(raw as usize) {
            Some(count) => count,
            None => self.sparse.entry(raw).or_default(),
        };
        if *count == 0 {
            false
        } else {
            *count -= 1;
            true
        }
    }
}

/// A per-component FIFO of `(instruction index, cycle)` pairs — used
/// both for dispatched-but-unstarted fronts (`pending`, cycle =
/// available-at) and for started-but-unfinished instructions
/// (`inflight`, cycle = end time).
///
/// Total pushes per run are bounded by the kernel length, so a plain
/// `Vec` with a consumed-head cursor beats a ring buffer: push is a
/// `Vec::push` (amortized into the retained capacity), pop is a cursor
/// bump, and `clear` rewinds both for the next run.
#[derive(Debug, Default)]
struct PendingQueue {
    items: Vec<(usize, f64)>,
    head: usize,
}

impl PendingQueue {
    fn clear(&mut self) {
        self.items.clear();
        self.head = 0;
    }

    #[inline]
    fn push_back(&mut self, entry: (usize, f64)) {
        self.items.push(entry);
    }

    #[inline]
    fn front(&self) -> Option<&(usize, f64)> {
        self.items.get(self.head)
    }

    #[inline]
    fn pop_front(&mut self) {
        debug_assert!(self.head < self.items.len());
        self.head += 1;
    }

    fn len(&self) -> usize {
        self.items.len() - self.head
    }

    /// Live (unconsumed) entries, front first.
    #[inline]
    fn iter(&self) -> std::slice::Iter<'_, (usize, f64)> {
        self.items[self.head..].iter()
    }
}

/// Instruction class, mirrored out of the [`Instruction`] enum into the
/// flat descriptor table so the event loop matches on one byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Kind {
    Compute,
    Transfer,
    SetFlag,
    WaitFlag,
    #[default]
    Barrier,
}

/// Sentinel duration for an instruction whose rate is missing from the
/// chip spec: unrepresentable by the real duration math (positive rates,
/// non-negative latencies), so the start path can branch to the cold
/// spec lookup — which reproduces the original error — on `is_nan()`.
const MISSING_RATE: f64 = f64::NAN;

/// One instruction, flattened: what the event loop needs to dispatch,
/// start, and retire it, packed into 16 bytes so the hot path walks a
/// dense array instead of re-matching the [`Instruction`] enum per
/// event. Durations are precomputed — each instruction starts at most
/// once per run, so this moves the rate lookup out of the loop rather
/// than duplicating it. Operand regions deliberately stay behind in the
/// `Instruction`: conflict checks only run for fronts blocked behind an
/// executing peer, so flattening every region up front costs more in
/// prepare-pass pointer chasing than the rare checks save (measured on
/// the region-free synthetic mixes, which the flattening slowed ~40%).
#[derive(Debug, Clone, Copy, Default)]
struct InstrDesc {
    /// Latency in cycles, fault jitter folded in; [`MISSING_RATE`] when
    /// the spec lacks the rate (cold error path).
    duration: f64,
    /// Raw flag id for `SetFlag`/`WaitFlag`; 0 otherwise.
    flag: u32,
    kind: Kind,
    /// `Component` index; 0 (unused) for barriers.
    queue: u8,
}

/// The per-run mutable state of the engine, reusable across runs.
///
/// Everything here is cleared (not reallocated) by [`prepare`] at the
/// start of a run, so the backing capacities — queue vectors, the flag
/// table, the descriptor and region arenas — survive from run to run.
/// Error paths may return a scratch dirty (a cancelled run leaves queued
/// entries behind); `prepare` tolerates that by clearing unconditionally.
///
/// [`prepare`]: EngineScratch::prepare
#[derive(Debug, Default)]
struct EngineScratch {
    /// Per-component FIFO of dispatched instructions.
    pending: [PendingQueue; 6],
    /// Overflow for each queue's in-flight FIFO: entries *behind* the
    /// head (which lives in the `Run`'s `head_index`/`head_end` arrays
    /// so the hot scans stay plain array loads). Non-empty only when a
    /// queue starts its next front while the previous instruction's
    /// completion event is still unprocessed — possible exactly when
    /// that instruction ends at another event's timestamp, because the
    /// busy test (`busy_until > now`, strict — same as the seed engine)
    /// frees the queue mid-timestamp. Per queue, entries stay ordered
    /// by start, which also orders them by end and by index.
    inflight_spill: [PendingQueue; 6],
    flags: FlagTable,
    /// Whether instruction `i` has started (its record was emitted).
    started: Vec<bool>,
    /// Flat per-instruction descriptors, rebuilt each run.
    descs: Vec<InstrDesc>,
}

impl EngineScratch {
    fn prepare(&mut self, kernel: &Kernel) {
        for queue in &mut self.pending {
            queue.clear();
        }
        for queue in &mut self.inflight_spill {
            queue.clear();
        }
        self.flags.prepare(kernel);
        self.started.clear();
        self.started.resize(kernel.len(), false);
    }

    /// Rebuilds the descriptor table for `kernel`. One pass, touching
    /// each [`Instruction`] exactly once — afterwards the event loop
    /// reads the flat table everywhere except spatial-conflict checks
    /// (and the sink, which still receives `&Instruction` references;
    /// `NullSink`/`TraceCollector` never dereference them).
    fn build_descs(
        &mut self,
        kernel: &Kernel,
        chip: &ChipSpec,
        tables: &DurationTables,
        faults: Option<&FaultPlan>,
    ) {
        self.descs.clear();
        for (index, instr) in kernel.instructions().iter().enumerate() {
            let mut desc = InstrDesc::default();
            match instr {
                Instruction::Compute(c) => {
                    desc.kind = Kind::Compute;
                    desc.queue = Component::from_unit(c.unit).index() as u8;
                    let peak = tables.peak[c.unit as usize][c.precision as usize];
                    desc.duration = if peak == 0.0 {
                        MISSING_RATE
                    } else {
                        chip.compute_issue_cycles + c.ops as f64 / peak
                    };
                }
                Instruction::Transfer(t) => {
                    desc.kind = Kind::Transfer;
                    desc.queue = t.path.component().index() as u8;
                    let (bytes_per_cycle, latency_cycles, overhead_bytes) =
                        tables.transfer[t.path as usize];
                    desc.duration = if bytes_per_cycle == 0.0 {
                        MISSING_RATE
                    } else {
                        // Same expression as `TransferSpec::cycles`.
                        latency_cycles + (t.bytes() as f64 + overhead_bytes) / bytes_per_cycle
                    };
                }
                Instruction::SetFlag { queue, flag } => {
                    desc.kind = Kind::SetFlag;
                    desc.queue = queue.index() as u8;
                    desc.flag = flag.raw();
                    desc.duration = chip.flag_cycles;
                }
                Instruction::WaitFlag { queue, flag } => {
                    desc.kind = Kind::WaitFlag;
                    desc.queue = queue.index() as u8;
                    desc.flag = flag.raw();
                    desc.duration = chip.flag_cycles;
                }
                Instruction::Barrier => {
                    desc.kind = Kind::Barrier;
                }
            }
            // The old path applied the fault factor after the (fallible)
            // rate lookup; multiplying the NaN sentinel keeps it NaN, so
            // the error ordering is unchanged.
            if let Some(plan) = faults {
                desc.duration *= plan.latency_factor(index);
            }
            self.descs.push(desc);
        }
    }
}

/// Direct-indexed copies of a [`ChipSpec`]'s rate tables, built once per
/// simulator (and once per faulted run for the derived chip) so the
/// event loop replaces linear table scans per instruction start with an
/// array load. A zero entry marks a pair/path absent from the spec;
/// `duration` then falls back to the spec lookup so the error carries
/// the same detail as before. Zero can't collide with a real rate:
/// every chip that reaches the engine passed [`ChipSpec::validate`],
/// which requires positive rates.
#[derive(Debug, Clone, Copy)]
struct DurationTables {
    /// Peak ops/cycle by `[unit as usize][precision as usize]`.
    peak: [[f64; 5]; 3],
    /// `(bytes_per_cycle, latency_cycles, overhead_bytes)` by path.
    transfer: [(f64, f64, f64); 20],
}

impl DurationTables {
    fn from_chip(chip: &ChipSpec) -> Self {
        let mut peak = [[0.0f64; 5]; 3];
        for unit in ComputeUnit::ALL {
            for precision in Precision::ALL {
                if let Ok(rate) = chip.peak_ops_per_cycle(unit, precision) {
                    peak[unit as usize][precision as usize] = rate;
                }
            }
        }
        let mut transfer = [(0.0f64, 0.0f64, 0.0f64); 20];
        for path in TransferPath::ALL {
            if let Ok(spec) = chip.transfer(path) {
                transfer[path as usize] =
                    (spec.bytes_per_cycle, spec.latency_cycles, spec.overhead_bytes);
            }
        }
        DurationTables { peak, transfer }
    }
}

/// Upper bound on idle scratches retained by a pool; beyond this,
/// returned scratches are dropped. Six-queue kernels never need more
/// concurrent scratches than worker threads, and worker counts in this
/// repository are single digits.
const SCRATCH_POOL_CAP: usize = 32;

#[derive(Debug, Default)]
struct ScratchPool {
    // Boxed on purpose: a scratch is several hundred bytes of inline
    // arrays, and the box keeps check-out/return a pointer move instead
    // of a memcpy through the mutex.
    #[allow(clippy::vec_box)]
    idle: Mutex<Vec<Box<EngineScratch>>>,
}

impl ScratchPool {
    fn acquire(&self) -> Box<EngineScratch> {
        self.idle.lock().unwrap_or_else(PoisonError::into_inner).pop().unwrap_or_default()
    }

    fn release(&self, scratch: Box<EngineScratch>) {
        let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
        if idle.len() < SCRATCH_POOL_CAP {
            idle.push(scratch);
        }
    }

    fn clear(&self) {
        self.idle.lock().unwrap_or_else(PoisonError::into_inner).clear();
    }

    fn len(&self) -> usize {
        self.idle.lock().unwrap_or_else(PoisonError::into_inner).len()
    }
}

/// Simulates kernels on one chip.
///
/// See the [crate-level documentation](crate) for the execution
/// semantics. The simulator owns a pool of reusable
/// [`EngineScratch`] arenas; cloning it is cheap (the chip spec, the
/// cached validation verdict, and the scratch pool are shared through
/// `Arc`), so per-attempt clones on the supervised path reuse the same
/// warmed-up arenas instead of rebuilding state.
#[derive(Debug, Clone)]
pub struct Simulator {
    chip: Arc<ChipSpec>,
    budget: SimBudget,
    cancel: Option<CancelToken>,
    /// Spec-invariant violation found at construction, surfaced on the
    /// first simulate call (keeps `new` infallible for the many call
    /// sites that construct from built-in specs). Validation runs
    /// exactly once per chip; clones share the verdict through the
    /// `Arc`, and the inner error is deep-cloned only on the cold path
    /// that actually reports it.
    spec_error: Option<Arc<ArchError>>,
    scratch: Arc<ScratchPool>,
    /// Direct-indexed rate tables derived from `chip` at construction.
    tables: DurationTables,
}

impl Simulator {
    /// Creates a simulator for `chip`.
    ///
    /// The chip specification is checked immediately; if it violates an
    /// invariant (see [`ChipSpec::validate`]), every subsequent simulate
    /// call reports [`SimError::Arch`] instead of producing garbage
    /// cycles. Use [`Simulator::try_new`] to surface the problem at
    /// construction time.
    #[must_use]
    pub fn new(chip: ChipSpec) -> Self {
        let spec_error = chip.validate().err().map(Arc::new);
        let tables = DurationTables::from_chip(&chip);
        Simulator {
            chip: Arc::new(chip),
            budget: SimBudget::default(),
            cancel: None,
            spec_error,
            scratch: Arc::new(ScratchPool::default()),
            tables,
        }
    }

    /// Creates a simulator for `chip`, rejecting invalid specifications.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidSpec`] when the chip violates a
    /// construction invariant (non-positive frequency, zero bandwidth,
    /// empty rate tables, ...).
    pub fn try_new(chip: ChipSpec) -> Result<Self, ArchError> {
        chip.validate()?;
        let tables = DurationTables::from_chip(&chip);
        Ok(Simulator {
            chip: Arc::new(chip),
            budget: SimBudget::default(),
            cancel: None,
            spec_error: None,
            scratch: Arc::new(ScratchPool::default()),
            tables,
        })
    }

    /// Replaces the watchdog budget.
    #[must_use]
    pub fn with_budget(mut self, budget: SimBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a cooperative cancellation token, checked in the event
    /// loop alongside the budget. A cancelled (or deadline-expired)
    /// token makes every in-flight and future run on this simulator
    /// return [`SimError::Cancelled`] with a forensics snapshot.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, when one exists.
    #[must_use]
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The chip this simulator models.
    #[must_use]
    pub fn chip(&self) -> &ChipSpec {
        &self.chip
    }

    /// The watchdog budget in force.
    #[must_use]
    pub fn budget(&self) -> SimBudget {
        self.budget
    }

    /// Drops the pooled scratch arenas (shared across clones of this
    /// simulator). Runs repopulate the pool on demand; call this after
    /// an unusually large one-off kernel to release the capacity its
    /// arenas retained.
    pub fn reset(&self) {
        self.scratch.clear();
    }

    /// Number of idle pooled scratch arenas (shared across clones).
    /// Observability hook for tests and diagnostics, not API.
    #[doc(hidden)]
    #[must_use]
    pub fn pooled_scratch(&self) -> usize {
        self.scratch.len()
    }

    /// Executes `kernel` and returns its trace.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Validation`] when the kernel fails static
    /// validation, [`SimError::Arch`] when the chip spec is invalid or
    /// it references rates missing from the spec,
    /// [`SimError::Deadlock`] if execution stalls (defensive; validation
    /// rules this out), and [`SimError::BudgetExceeded`] when the
    /// watchdog trips.
    pub fn simulate(&self, kernel: &Kernel) -> Result<Trace, SimError> {
        let mut collector = TraceCollector::new();
        let summary = self.simulate_into(kernel, &mut collector)?;
        Ok(collector.into_trace(kernel.name(), summary.total_cycles))
    }

    /// Executes `kernel`, streaming records into `sink` instead of
    /// materializing a trace.
    ///
    /// # Errors
    ///
    /// As [`Simulator::simulate`]. On error the sink holds whatever was
    /// emitted before the failure.
    pub fn simulate_into<S: TraceSink>(
        &self,
        kernel: &Kernel,
        sink: &mut S,
    ) -> Result<RunSummary, SimError> {
        self.check_spec()?;
        validate(kernel, &self.chip)?;
        self.run(kernel, &self.chip, &self.tables, None, sink)
    }

    /// Executes `kernel` without static validation.
    ///
    /// This is the engine's raw entry point: kernels with broken
    /// synchronization run until they genuinely stall, producing a
    /// [`SimError::Deadlock`] with full forensics (or
    /// [`SimError::BudgetExceeded`] if they run away). The differential
    /// fuzzer uses it to compare the engine's verdict against the
    /// validator's.
    ///
    /// # Errors
    ///
    /// As [`Simulator::simulate`], minus [`SimError::Validation`].
    pub fn simulate_unchecked(&self, kernel: &Kernel) -> Result<Trace, SimError> {
        let mut collector = TraceCollector::new();
        let summary = self.simulate_unchecked_into(kernel, &mut collector)?;
        Ok(collector.into_trace(kernel.name(), summary.total_cycles))
    }

    /// Executes `kernel` without static validation, streaming records
    /// into `sink`.
    ///
    /// # Errors
    ///
    /// As [`Simulator::simulate_unchecked`].
    pub fn simulate_unchecked_into<S: TraceSink>(
        &self,
        kernel: &Kernel,
        sink: &mut S,
    ) -> Result<RunSummary, SimError> {
        self.check_spec()?;
        self.run(kernel, &self.chip, &self.tables, None, sink)
    }

    /// Executes `kernel` under a fault plan.
    ///
    /// The plan's chip faults (degraded bandwidth) produce a derived
    /// chip, its kernel faults (dropped/duplicated `set_flag`s,
    /// truncation) produce a derived kernel, and its latency jitter
    /// perturbs every instruction duration. The derived kernel is *not*
    /// re-validated — injecting sync faults into valid kernels and
    /// watching the engine deadlock is the point — but the derived chip
    /// must still satisfy the spec invariants.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Arch`] when the faulted chip fails
    /// [`ChipSpec::validate`] (for example, bandwidth degraded to zero),
    /// plus everything [`Simulator::simulate_unchecked`] can return.
    pub fn simulate_with_faults(
        &self,
        kernel: &Kernel,
        plan: &FaultPlan,
    ) -> Result<Trace, SimError> {
        let mut collector = TraceCollector::new();
        let summary = self.simulate_with_faults_into(kernel, plan, &mut collector)?;
        // The derived kernel keeps the original name, so the trace does.
        Ok(collector.into_trace(kernel.name(), summary.total_cycles))
    }

    /// Executes `kernel` under a fault plan, streaming records into
    /// `sink`.
    ///
    /// # Errors
    ///
    /// As [`Simulator::simulate_with_faults`].
    pub fn simulate_with_faults_into<S: TraceSink>(
        &self,
        kernel: &Kernel,
        plan: &FaultPlan,
        sink: &mut S,
    ) -> Result<RunSummary, SimError> {
        self.check_spec()?;
        let chip = plan.apply_to_chip(&self.chip);
        chip.validate()?;
        let kernel = plan.apply_to_kernel(kernel);
        // The derived chip has its own rates; rebuild the tables for it
        // (fault runs are cold paths — chaos experiments, not sweeps).
        let tables = DurationTables::from_chip(&chip);
        self.run(&kernel, &chip, &tables, Some(plan), sink)
    }

    fn run<S: TraceSink>(
        &self,
        kernel: &Kernel,
        chip: &ChipSpec,
        tables: &DurationTables,
        faults: Option<&FaultPlan>,
        sink: &mut S,
    ) -> Result<RunSummary, SimError> {
        let mut scratch = self.scratch.acquire();
        scratch.prepare(kernel);
        scratch.build_descs(kernel, chip, tables, faults);
        sink.begin(kernel);
        let run = Run {
            kernel,
            instrs: kernel.instructions(),
            chip,
            faults,
            cancel: self.cancel.as_ref(),
            budget: self.budget,
            scratch: &mut scratch,
            sink,
            dispatch_free: 0.0,
            next_dispatch: 0,
            barrier_pending: false,
            last_completion: 0.0,
            clock: 0.0,
            busy_until: [0.0; 6],
            head_index: [NO_INSTR; 6],
            head_end: [0.0; 6],
            spill_mask: 0,
            wake_at: [f64::INFINITY; 6],
            block_reason: [None; 6],
            outstanding: 0,
            completed: 0,
            max_end: 0.0,
        };
        let result = run.execute();
        self.scratch.release(scratch);
        result
    }

    fn check_spec(&self) -> Result<(), SimError> {
        match &self.spec_error {
            // Cold path: only broken-spec simulators get here, and every
            // call on one fails. The hot path is the `None` arm.
            Some(err) => Err(SimError::Arch((**err).clone())),
            None => Ok(()),
        }
    }
}

/// One run of the event loop: borrows the kernel, a pooled scratch, and
/// the caller's sink. Scalar per-run state lives inline; everything with
/// a heap footprint lives in the scratch.
struct Run<'a, S: TraceSink> {
    kernel: &'a Kernel,
    instrs: &'a [Instruction],
    chip: &'a ChipSpec,
    budget: SimBudget,
    faults: Option<&'a FaultPlan>,
    cancel: Option<&'a CancelToken>,
    scratch: &'a mut EngineScratch,
    sink: &'a mut S,
    /// Dispatcher timeline: when the next instruction can be dispatched.
    dispatch_free: f64,
    next_dispatch: usize,
    barrier_pending: bool,
    last_completion: f64,
    /// Simulated time of the most recently processed event.
    clock: f64,
    /// End time of the last *started* instruction per queue. The start
    /// gate is `busy_until > now` — strict, exactly the seed engine's
    /// test — so a queue whose instruction ends at precisely `now` can
    /// start its next front before that completion event is processed
    /// (the ended instruction stays in flight until then).
    busy_until: [f64; 6],
    /// Head of each queue's in-flight FIFO ([`NO_INSTR`] when nothing
    /// is in flight): the earliest-ending started-but-unfinished
    /// instruction, the only per-queue candidate for the completion
    /// scan. Later entries — rare, same-timestamp ties only — spill to
    /// `scratch.inflight_spill`.
    head_index: [usize; 6],
    /// Completion time of each `head_index` entry.
    head_end: [f64; 6],
    /// Bitmask of queues with spilled (second-and-later) in-flight
    /// entries; keeps the spill loops off the hot conflict check.
    spill_mask: u8,
    /// Pending wake per queue: the time its front becomes available
    /// (`f64::INFINITY` when none). Each queue holds at most one live
    /// wake — a front cannot start before its available time, so it
    /// cannot change out from under a scheduled wake, and successive
    /// fronts' available times strictly increase.
    wake_at: [f64; 6],
    /// Last observed blocking cause of each queue's front instruction.
    block_reason: [Option<StallCause>; 6],
    outstanding: usize,
    completed: usize,
    /// Running maximum of emitted record ends — the trace total.
    max_end: f64,
}

impl<'a, S: TraceSink> Run<'a, S> {
    fn execute(mut self) -> Result<RunSummary, SimError> {
        self.dispatch();
        self.try_start_all(0.0)?;
        let mut processed: u64 = 0;
        loop {
            // Select the next event exactly as the old heap's `Ord` did:
            // earliest time first; at equal times completions before
            // wakes, completions by ascending instruction index. Only
            // each queue's *earliest* in-flight instruction (the FIFO
            // head) can be next — within a queue, ends and indices both
            // increase front-to-back — so a six-head scan plus six wake
            // slots replaces pop+push.
            let mut time = f64::INFINITY;
            let mut complete_q = NO_INSTR;
            let mut complete_index = NO_INSTR;
            for q in 0..6 {
                let index = self.head_index[q];
                if index == NO_INSTR {
                    continue;
                }
                let end = self.head_end[q];
                if complete_q == NO_INSTR
                    || end.total_cmp(&time).is_lt()
                    || (end.total_cmp(&time).is_eq() && index < complete_index)
                {
                    time = end;
                    complete_q = q;
                    complete_index = index;
                }
            }
            let mut wake_q = NO_INSTR;
            for q in 0..6 {
                let at = self.wake_at[q];
                // Strict: completions win ties, earlier queue wins
                // between equal wakes (either order is a no-op for the
                // later one). `INFINITY` slots never win a strict test.
                if at.total_cmp(&time).is_lt() {
                    time = at;
                    wake_q = q;
                }
            }
            if complete_q == NO_INSTR && wake_q == NO_INSTR {
                break;
            }
            let now = time;
            self.clock = now;
            processed += 1;
            if processed > self.budget.max_events || now > self.budget.max_cycles {
                return Err(SimError::BudgetExceeded {
                    events: processed,
                    cycles: now,
                    max_events: self.budget.max_events,
                    max_cycles: self.budget.max_cycles,
                });
            }
            if let Some(token) = self.cancel {
                // The explicit flag is one atomic load — check it every
                // event. The deadline reads the wall clock, so poll it
                // only every DEADLINE_POLL_EVENTS events (and on the
                // first).
                if token.is_signalled()
                    || (processed % DEADLINE_POLL_EVENTS == 1 && token.is_expired())
                {
                    return Err(SimError::Cancelled {
                        events: processed,
                        cycles: now,
                        forensics: Box::new(self.forensics()),
                    });
                }
            }
            if wake_q != NO_INSTR {
                // Wakes retry *all* queues, like the seed's per-event
                // retry-everyone loop. Wakes are rare (about 1% of
                // events on real kernels), so a selective argument —
                // which would have to reason about same-timestamp ties,
                // the exact trap the golden suite caught on the
                // completion path — buys nothing here.
                self.wake_at[wake_q] = f64::INFINITY;
                self.try_start_all(now)?;
            } else {
                self.inflight_pop(complete_q);
                let was_set_flag = self.scratch.descs[complete_index].kind == Kind::SetFlag;
                let barrier_released = self.finish(complete_index, now);
                if barrier_released {
                    // A released barrier just dispatched fresh fronts to
                    // (necessarily idle and empty) queues: try them all.
                    self.try_start_all(now)?;
                } else {
                    self.retry_after_completion(complete_q, was_set_flag, now)?;
                }
            }
        }
        if self.completed != self.kernel.len() || self.scratch.started.iter().any(|&s| !s) {
            return Err(SimError::Deadlock(Box::new(self.forensics())));
        }
        Ok(RunSummary { total_cycles: self.max_end, events: processed })
    }

    /// Re-attempts starts after the instruction on queue `fq` completed:
    /// the freed queue itself, every flag-blocked queue when a
    /// `set_flag` completed, every region-blocked queue (any completion
    /// can release a spatial dependency), and every queue whose last
    /// started instruction ends at exactly `now`. The last gate is the
    /// subtle one: the busy test is *strict* (`busy_until > now`), so a
    /// queue becomes startable the moment simulated time reaches its
    /// last end — at the *first* event carrying that timestamp, which
    /// with tied completions is not necessarily the queue's own
    /// completion. The seed engine gets this for free by retrying
    /// everyone per event; skipping a tied queue here let the freed
    /// queue's front start first and claim a region out of
    /// `Component::ALL` order (caught by the golden differential suite
    /// on MobileNetV3's pipelined cast kernel). Skipping the remaining
    /// queues is faithful because their attempts were no-ops: a front's
    /// block cause never changes, and flag counters and in-flight
    /// regions change only at completions.
    #[inline]
    fn retry_after_completion(
        &mut self,
        fq: usize,
        was_set_flag: bool,
        now: f64,
    ) -> Result<(), SimError> {
        for component in Component::ALL {
            let q = component.index();
            let affected = q == fq
                || self.busy_until[q] == now
                || match self.block_reason[q] {
                    Some(StallCause::Flag) => was_set_flag,
                    Some(StallCause::Region) => true,
                    _ => false,
                };
            if affected {
                self.try_start(component, now)?;
            }
        }
        Ok(())
    }

    /// Finalizes `record` — marks its instruction started, folds its end
    /// into the running total — and hands it to the sink.
    #[inline]
    fn emit(&mut self, record: InstrRecord) {
        let index = record.index;
        if record.end > self.max_end {
            self.max_end = record.end;
        }
        self.scratch.started[index] = true;
        self.sink.emit(&self.instrs[index], record);
    }

    /// Snapshots engine state into a [`DeadlockReport`]. Called at
    /// quiescence: the event heap is empty, so nothing is executing and
    /// every non-empty queue has a genuinely blocked front.
    fn forensics(&self) -> DeadlockReport {
        let instructions = self.instrs;
        let mut queues = Vec::new();
        let mut wait_edges = Vec::new();
        for component in Component::ALL {
            let q = component.index();
            let Some(&(front_index, _)) = self.scratch.pending[q].front() else {
                continue;
            };
            let instr = &instructions[front_index];
            let cause = match instr {
                Instruction::WaitFlag { flag, .. } => {
                    wait_edges.push(WaitEdge {
                        waiter: component,
                        flag: flag.raw(),
                        pending_setters: self.pending_setters(flag.raw()),
                    });
                    BlockCause::Flag { flag: flag.raw() }
                }
                Instruction::Compute(_) | Instruction::Transfer(_)
                    if self.has_region_conflict(front_index) =>
                {
                    let conflicting_with = self
                        .head_index
                        .iter()
                        .copied()
                        .chain(
                            self.scratch
                                .inflight_spill
                                .iter()
                                .flat_map(PendingQueue::iter)
                                .map(|&(other, _)| other),
                        )
                        .find(|&other| {
                            other != NO_INSTR && instr.conflicts_with(&instructions[other])
                        })
                        .unwrap_or(front_index);
                    BlockCause::Region { conflicting_with }
                }
                _ => BlockCause::NotStarted,
            };
            queues.push(QueueState {
                queue: component,
                depth: self.scratch.pending[q].len(),
                front_index,
                front_instr: instr_text(instr),
                cause,
            });
        }
        DeadlockReport {
            kernel: self.kernel.name().to_string(),
            at_cycle: self.clock,
            total: self.kernel.len(),
            remaining: self.kernel.len() - self.completed,
            undispatched: self.kernel.len() - self.next_dispatch,
            barrier_pending: self.barrier_pending,
            queues,
            wait_edges,
        }
    }

    /// Every `set_flag` of `flag` that has not started (and therefore, at
    /// quiescence, never completed), with its location. Deadlock-only:
    /// this allocates its result `Vec` freely because the event loop
    /// never reaches it on a successful run.
    fn pending_setters(&self, flag: u32) -> Vec<PendingSetter> {
        self.instrs
            .iter()
            .enumerate()
            .filter(|&(i, instr)| {
                matches!(instr, Instruction::SetFlag { flag: f, .. } if f.raw() == flag)
                    && !self.scratch.started[i]
            })
            .map(|(i, instr)| PendingSetter {
                index: i,
                location: if i >= self.next_dispatch {
                    SetterLocation::Undispatched
                } else {
                    instr.queue().map_or(SetterLocation::Undispatched, SetterLocation::Queued)
                },
            })
            .collect()
    }

    /// Dispatches instructions in program order until a barrier blocks or
    /// the kernel is exhausted.
    fn dispatch(&mut self) {
        while !self.barrier_pending && self.next_dispatch < self.kernel.len() {
            let index = self.next_dispatch;
            let desc = &self.scratch.descs[index];
            if desc.kind == Kind::Barrier {
                // pipe_barrier(ALL): wait for every dispatched
                // instruction to finish before dispatching further.
                if self.outstanding == 0 {
                    let start = self.dispatch_free.max(self.last_completion);
                    let end = start + self.chip.barrier_cycles;
                    let available_at = self.dispatch_free;
                    self.dispatch_free = end;
                    self.completed += 1;
                    self.next_dispatch += 1;
                    self.emit(InstrRecord {
                        index,
                        queue: None,
                        available_at,
                        start,
                        end,
                        stall: StallCause::None,
                    });
                } else {
                    self.barrier_pending = true;
                }
            } else {
                let queue = desc.queue as usize;
                self.dispatch_free += self.chip.dispatch_cycles;
                self.scratch.pending[queue].push_back((index, self.dispatch_free));
                self.outstanding += 1;
                self.next_dispatch += 1;
            }
        }
    }

    /// Retires `index`; returns whether this completion released a
    /// pending barrier (and therefore dispatched fresh fronts).
    #[inline]
    fn finish(&mut self, index: usize, now: f64) -> bool {
        self.outstanding -= 1;
        self.completed += 1;
        self.last_completion = self.last_completion.max(now);
        let desc = self.scratch.descs[index];
        if desc.kind == Kind::SetFlag {
            self.scratch.flags.increment(desc.flag);
        }
        if self.barrier_pending && self.outstanding == 0 {
            self.barrier_pending = false;
            self.dispatch();
            return true;
        }
        false
    }

    fn try_start_all(&mut self, now: f64) -> Result<(), SimError> {
        for component in Component::ALL {
            self.try_start(component, now)?;
        }
        Ok(())
    }

    fn try_start(&mut self, component: Component, now: f64) -> Result<(), SimError> {
        let q = component.index();
        if self.busy_until[q] > now {
            return Ok(());
        }
        let Some(&(index, available)) = self.scratch.pending[q].front() else {
            return Ok(());
        };
        if available > now {
            self.schedule_wake(q, available);
            return Ok(());
        }
        let desc = self.scratch.descs[index];
        match desc.kind {
            Kind::WaitFlag => {
                if !self.scratch.flags.try_consume(desc.flag) {
                    // Blocked; a future SetFlag completion retries us.
                    self.block_reason[q] = Some(StallCause::Flag);
                    return Ok(());
                }
            }
            Kind::Compute | Kind::Transfer => {
                if self.has_region_conflict(index) {
                    // Blocked on a spatial dependency; the conflicting
                    // instruction's completion retries us.
                    self.block_reason[q] = Some(StallCause::Region);
                    return Ok(());
                }
            }
            Kind::SetFlag => {}
            Kind::Barrier => unreachable!("barriers are dispatcher-level"),
        }
        let stall = match self.block_reason[q].take() {
            Some(cause) => cause,
            None if now > available + 1e-9 => StallCause::QueueBusy,
            None => StallCause::None,
        };
        let duration = if desc.duration.is_nan() {
            // The spec lacks this instruction's rate: re-run the spec
            // lookup so the error carries the original detail.
            self.missing_rate_error(index)?
        } else {
            desc.duration
        };
        let end = now + duration;
        self.busy_until[q] = end;
        self.scratch.pending[q].pop_front();
        self.inflight_push(q, index, end);
        self.emit(InstrRecord {
            index,
            queue: Some(component),
            available_at: available,
            start: now,
            end,
            stall,
        });
        Ok(())
    }

    /// Records a freshly started instruction as in flight: into the
    /// head slot when the queue was drained, otherwise into the spill
    /// FIFO (the new entry ends last — its start is at or after every
    /// earlier entry's end — so FIFO order is preserved).
    #[inline]
    fn inflight_push(&mut self, q: usize, index: usize, end: f64) {
        if self.head_index[q] == NO_INSTR {
            self.head_index[q] = index;
            self.head_end[q] = end;
        } else {
            self.scratch.inflight_spill[q].push_back((index, end));
            self.spill_mask |= 1 << q;
        }
    }

    /// Retires queue `q`'s in-flight head, promoting the next spilled
    /// entry if one exists.
    #[inline]
    fn inflight_pop(&mut self, q: usize) {
        if self.spill_mask & (1 << q) != 0 {
            let spill = &mut self.scratch.inflight_spill[q];
            let &(index, end) = spill.front().expect("spill bit set on empty queue");
            spill.pop_front();
            if spill.front().is_none() {
                self.spill_mask &= !(1 << q);
            }
            self.head_index[q] = index;
            self.head_end[q] = end;
        } else {
            self.head_index[q] = NO_INSTR;
        }
    }

    /// Whether `index` spatially conflicts with any in-flight
    /// instruction. Ended-but-unfinished instructions still conflict —
    /// the seed keeps them in its `executing` set until their completion
    /// event is processed, and block/start ordering at tied timestamps
    /// depends on it.
    #[inline]
    fn has_region_conflict(&self, index: usize) -> bool {
        let instr = &self.instrs[index];
        if self
            .head_index
            .iter()
            .any(|&other| other != NO_INSTR && instr.conflicts_with(&self.instrs[other]))
        {
            return true;
        }
        if self.spill_mask != 0 {
            return self
                .scratch
                .inflight_spill
                .iter()
                .flat_map(PendingQueue::iter)
                .any(|&(other, _)| instr.conflicts_with(&self.instrs[other]));
        }
        false
    }

    #[inline]
    fn schedule_wake(&mut self, q: usize, at: f64) {
        // Idempotent: re-scheduling the same front stores the same time.
        self.wake_at[q] = at;
    }

    /// Cold path behind the [`MISSING_RATE`] sentinel: the chip spec has
    /// no rate for this instruction, so re-run the full spec lookup to
    /// produce the same [`SimError::Arch`] detail the pre-table engine
    /// reported. (Reachable only via `simulate_unchecked` on kernels
    /// whose unit/precision pairs static validation would reject.)
    #[cold]
    fn missing_rate_error(&self, index: usize) -> Result<f64, SimError> {
        let mut duration = match &self.instrs[index] {
            Instruction::Compute(c) => {
                self.chip.compute_issue_cycles
                    + c.ops as f64 / self.chip.peak_ops_per_cycle(c.unit, c.precision)?
            }
            Instruction::Transfer(t) => self.chip.transfer(t.path)?.cycles(t.bytes()),
            _ => self.chip.flag_cycles,
        };
        if let Some(plan) = self.faults {
            duration *= plan.latency_factor(index);
        }
        Ok(duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::NullSink;
    use ascend_arch::{Buffer, ComputeUnit, MteEngine, Precision, TransferPath};
    use ascend_isa::{FlagId, KernelBuilder, Region};
    use std::time::Duration;

    fn sim() -> Simulator {
        Simulator::new(ChipSpec::training())
    }

    fn gm(offset: u64, len: u64) -> Region {
        Region::new(Buffer::Gm, offset, len)
    }

    fn ub(offset: u64, len: u64) -> Region {
        Region::new(Buffer::Ub, offset, len)
    }

    #[test]
    fn single_transfer_timing_matches_spec() {
        let sim = sim();
        let mut b = KernelBuilder::new("one");
        b.transfer(TransferPath::GmToUb, gm(0, 4096), ub(0, 4096)).unwrap();
        let trace = sim.simulate(&b.build()).unwrap();
        let spec = sim.chip().transfer(TransferPath::GmToUb).unwrap();
        let expected = sim.chip().dispatch_cycles + spec.cycles(4096);
        assert!((trace.total_cycles() - expected).abs() < 1e-9);
    }

    #[test]
    fn same_mte_serializes_different_mtes_parallelize() {
        let sim = sim();
        // Two GM loads: same MTE-GM queue -> serial.
        let mut b = KernelBuilder::new("serial");
        b.transfer(TransferPath::GmToUb, gm(0, 8192), ub(0, 8192)).unwrap();
        b.transfer(TransferPath::GmToUb, gm(8192, 8192), ub(8192, 8192)).unwrap();
        let serial = sim.simulate(&b.build()).unwrap().total_cycles();

        // A GM load and a UB store: different MTEs -> parallel.
        let mut b = KernelBuilder::new("parallel");
        b.transfer(TransferPath::GmToUb, gm(0, 8192), ub(0, 8192)).unwrap();
        b.transfer(TransferPath::UbToGm, ub(8192, 8192), gm(8192, 8192)).unwrap();
        let parallel = sim.simulate(&b.build()).unwrap().total_cycles();

        assert!(
            parallel < serial * 0.7,
            "cross-MTE transfers must overlap: parallel={parallel} serial={serial}"
        );
    }

    #[test]
    fn flags_enforce_order() {
        let sim = sim();
        let mut b = KernelBuilder::new("sync");
        let f = b.new_flag();
        // Vector waits for the load even though it is dispatched ready.
        b.wait_flag(ascend_arch::Component::Vector, f);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 1024, vec![ub(0, 2048)], vec![ub(0, 2048)]);
        b.transfer(TransferPath::GmToUb, gm(0, 2048), ub(0, 2048)).unwrap();
        b.set_flag(ascend_arch::Component::MteGm, f);
        let trace = sim.simulate(&b.build()).unwrap();
        let records = trace.records();
        // The compute (index 1) must start after the set_flag (index 3) ends.
        assert!(records[1].start >= records[3].end);
    }

    #[test]
    fn barrier_serializes_and_costs() {
        let sim = sim();
        let mut with_barrier = KernelBuilder::new("barrier");
        with_barrier.transfer(TransferPath::GmToUb, gm(0, 4096), ub(0, 4096)).unwrap();
        with_barrier.barrier_all();
        with_barrier.transfer(TransferPath::UbToGm, ub(4096, 4096), gm(8192, 4096)).unwrap();
        let barrier_time = sim.simulate(&with_barrier.build()).unwrap();

        let mut without = KernelBuilder::new("free");
        without.transfer(TransferPath::GmToUb, gm(0, 4096), ub(0, 4096)).unwrap();
        without.transfer(TransferPath::UbToGm, ub(4096, 4096), gm(8192, 4096)).unwrap();
        let free_time = sim.simulate(&without.build()).unwrap();

        assert!(barrier_time.total_cycles() > free_time.total_cycles());
        // With the barrier, the store starts after the load ends.
        let records = barrier_time.records();
        assert!(records[2].start >= records[0].end + sim.chip().barrier_cycles);
    }

    #[test]
    fn spatial_dependency_serializes_across_queues() {
        let sim = sim();
        // Store from ub[0..n] while loading into ub[0..n]: W/R conflict.
        let mut conflicted = KernelBuilder::new("conflict");
        conflicted.transfer(TransferPath::UbToGm, ub(0, 8192), gm(0, 8192)).unwrap();
        conflicted.transfer(TransferPath::GmToUb, gm(8192, 8192), ub(0, 8192)).unwrap();
        let conflict_trace = sim.simulate(&conflicted.build()).unwrap();
        let r = conflict_trace.records();
        assert!(r[1].start >= r[0].end, "conflicting transfers must serialize: {:?}", r);

        // Disjoint UB regions (RSD applied): they overlap in time.
        let mut free = KernelBuilder::new("rsd");
        free.transfer(TransferPath::UbToGm, ub(0, 8192), gm(0, 8192)).unwrap();
        free.transfer(TransferPath::GmToUb, gm(8192, 8192), ub(8192, 8192)).unwrap();
        let free_trace = sim.simulate(&free.build()).unwrap();
        let r = free_trace.records();
        assert!(r[1].start < r[0].end, "disjoint transfers should overlap");
        assert!(free_trace.total_cycles() < conflict_trace.total_cycles());
    }

    #[test]
    fn dispatch_cost_delays_later_instructions() {
        let sim = sim();
        let chip = sim.chip();
        let mut b = KernelBuilder::new("dispatch");
        for i in 0..10 {
            b.compute(ComputeUnit::Scalar, Precision::Int32, 1, vec![], vec![ub(i * 64, 64)]);
        }
        // A final transfer dispatched after 10 scalar instructions.
        b.transfer(TransferPath::GmToUb, gm(0, 64), ub(4096, 64)).unwrap();
        let trace = sim.simulate(&b.build()).unwrap();
        let records = trace.records();
        assert!(
            records[10].start >= 11.0 * chip.dispatch_cycles - 1e-9,
            "the transfer cannot start before the dispatcher reaches it"
        );
    }

    #[test]
    fn compute_issue_cost_penalizes_many_small_instructions() {
        let sim = sim();
        let total_ops: u64 = 98 * 1024;
        // repeat=1 style: 98 instructions of 1024 ops.
        let mut many = KernelBuilder::new("repeat1");
        for _ in 0..98 {
            many.compute(ComputeUnit::Vector, Precision::Fp16, 1024, vec![], vec![]);
        }
        // repeat=98 style: one instruction covering all ops.
        let mut one = KernelBuilder::new("repeat98");
        one.compute(ComputeUnit::Vector, Precision::Fp16, total_ops, vec![], vec![]);
        let many_t = sim.simulate(&many.build()).unwrap().total_cycles();
        let one_t = sim.simulate(&one.build()).unwrap().total_cycles();
        assert!(
            many_t > 2.0 * one_t,
            "issue overhead must dominate for tiny instructions: {many_t} vs {one_t}"
        );
    }

    #[test]
    fn every_instruction_is_recorded_once() {
        let sim = sim();
        let mut b = KernelBuilder::new("all");
        b.transfer(TransferPath::GmToUb, gm(0, 1024), ub(0, 1024)).unwrap();
        b.sync(ascend_arch::Component::MteGm, ascend_arch::Component::Vector);
        b.compute(ComputeUnit::Vector, Precision::Fp32, 256, vec![ub(0, 1024)], vec![ub(0, 1024)]);
        b.barrier_all();
        b.transfer(TransferPath::UbToGm, ub(0, 1024), gm(4096, 1024)).unwrap();
        let kernel = b.build();
        let trace = sim.simulate(&kernel).unwrap();
        assert_eq!(trace.records().len(), kernel.len());
        for (i, r) in trace.records().iter().enumerate() {
            assert_eq!(r.index, i);
            assert!(r.end >= r.start);
        }
    }

    #[test]
    fn total_time_is_at_least_the_busiest_queue() {
        let sim = sim();
        let mut b = KernelBuilder::new("bound");
        for i in 0..4 {
            b.transfer(TransferPath::GmToUb, gm(i * 4096, 4096), ub(i * 4096, 4096)).unwrap();
        }
        let trace = sim.simulate(&b.build()).unwrap();
        for c in Component::ALL {
            assert!(trace.total_cycles() >= trace.busy_cycles(c) - 1e-9);
        }
    }

    #[test]
    fn validation_failure_is_propagated() {
        let sim = sim();
        let kernel = KernelBuilder::new("empty").build();
        assert!(matches!(sim.simulate(&kernel), Err(SimError::Validation(_))));
    }

    #[test]
    fn invalid_spec_is_reported_not_simulated() {
        let mut chip = ChipSpec::training();
        chip.scale_bandwidth_unchecked(MteEngine::Gm, 0.0);
        let sim = Simulator::new(chip.clone());
        let mut b = KernelBuilder::new("doomed");
        b.transfer(TransferPath::GmToUb, gm(0, 1024), ub(0, 1024)).unwrap();
        let kernel = b.build();
        match sim.simulate(&kernel) {
            Err(SimError::Arch(ArchError::InvalidSpec { .. })) => {}
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        // The cached verdict is shared, not recomputed, by clones.
        match sim.clone().simulate(&kernel) {
            Err(SimError::Arch(ArchError::InvalidSpec { .. })) => {}
            other => panic!("expected InvalidSpec from the clone, got {other:?}"),
        }
        assert!(matches!(Simulator::try_new(chip), Err(ArchError::InvalidSpec { .. })));
    }

    #[test]
    fn unchecked_deadlock_carries_forensics() {
        let sim = sim();
        let mut b = KernelBuilder::new("stuck");
        let f = b.new_flag();
        // A wait with no matching set: validation would reject this.
        b.wait_flag(ascend_arch::Component::Vector, f);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 64, vec![], vec![]);
        let kernel = b.build();
        assert!(matches!(sim.simulate(&kernel), Err(SimError::Validation(_))));
        let Err(SimError::Deadlock(report)) = sim.simulate_unchecked(&kernel) else {
            panic!("unmatched wait must deadlock the engine");
        };
        assert_eq!(report.remaining, 2);
        assert_eq!(report.total, 2);
        let vector = report
            .queues
            .iter()
            .find(|q| q.queue == Component::Vector)
            .expect("vector queue must be stuck");
        assert_eq!(vector.front_index, 0);
        assert_eq!(vector.cause, BlockCause::Flag { flag: f.raw() });
        assert_eq!(report.wait_edges.len(), 1);
        assert!(report.wait_edges[0].pending_setters.is_empty(), "no setter exists");
        assert!(report.to_string().contains("the wait is unmatched"));
    }

    #[test]
    fn event_budget_trips_the_watchdog() {
        let sim = sim().with_budget(SimBudget { max_events: 4, max_cycles: f64::INFINITY });
        let mut b = KernelBuilder::new("busy");
        for i in 0..16 {
            b.transfer(TransferPath::GmToUb, gm(i * 1024, 1024), ub(i * 1024, 1024)).unwrap();
        }
        match sim.simulate(&b.build()) {
            Err(SimError::BudgetExceeded { events, max_events: 4, .. }) => {
                assert!(events > 4);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn cycle_budget_trips_the_watchdog() {
        let sim = sim().with_budget(SimBudget { max_events: u64::MAX, max_cycles: 1.0 });
        let mut b = KernelBuilder::new("slow");
        b.transfer(TransferPath::GmToUb, gm(0, 1 << 18), ub(0, 1 << 18)).unwrap();
        match sim.simulate(&b.build()) {
            Err(SimError::BudgetExceeded { cycles, .. }) => assert!(cycles > 1.0),
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn timing_faults_change_cycles_not_completion() {
        let sim = sim();
        let mut b = KernelBuilder::new("jitter");
        for i in 0..4 {
            b.transfer(TransferPath::GmToUb, gm(i * 4096, 4096), ub(i * 4096, 4096)).unwrap();
        }
        let kernel = b.build();
        let base = sim.simulate(&kernel).unwrap().total_cycles();
        let plan = ascend_faults::FaultPlan::new(7)
            .degrade_bandwidth(MteEngine::Gm, 0.5)
            .with_latency_jitter(0.2);
        let faulted = sim.simulate_with_faults(&kernel, &plan).unwrap();
        assert!(
            faulted.total_cycles() > base,
            "halved bandwidth must slow the kernel: {} vs {base}",
            faulted.total_cycles()
        );
    }

    #[test]
    fn dropped_set_flag_deadlocks_with_forensics() {
        let sim = sim();
        let mut b = KernelBuilder::new("sync");
        let f = b.new_flag();
        b.transfer(TransferPath::GmToUb, gm(0, 2048), ub(0, 2048)).unwrap();
        b.set_flag(ascend_arch::Component::MteGm, f);
        b.wait_flag(ascend_arch::Component::Vector, f);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 512, vec![ub(0, 2048)], vec![ub(0, 2048)]);
        let kernel = b.build();
        sim.simulate(&kernel).expect("the unfaulted kernel is valid");
        let plan = ascend_faults::FaultPlan::new(3).drop_set_flags(1);
        let Err(SimError::Deadlock(report)) = sim.simulate_with_faults(&kernel, &plan) else {
            panic!("dropping the only set_flag must deadlock");
        };
        assert!(report.queues.iter().any(|q| q.cause == BlockCause::Flag { flag: f.raw() }));
    }

    #[test]
    fn signalled_token_preempts_with_forensics() {
        let token = CancelToken::new();
        token.cancel();
        let sim = sim().with_cancel(token);
        let mut b = KernelBuilder::new("preempted");
        for i in 0..8 {
            b.transfer(TransferPath::GmToUb, gm(i * 1024, 1024), ub(i * 1024, 1024)).unwrap();
        }
        let kernel = b.build();
        let Err(err) = sim.simulate(&kernel) else {
            panic!("a pre-cancelled token must preempt the run");
        };
        assert!(err.is_transient());
        let SimError::Cancelled { events, forensics, .. } = &err else {
            panic!("expected Cancelled, got {err:?}");
        };
        assert!(*events >= 1, "the engine notices cancellation at an event boundary");
        assert_eq!(forensics.total, kernel.len());
        assert!(forensics.remaining > 0, "preemption leaves work incomplete");
        assert!(err.to_string().contains("cancelled"));
    }

    #[test]
    fn expired_deadline_preempts_the_run() {
        let sim = sim().with_cancel(CancelToken::with_timeout(std::time::Duration::ZERO));
        let mut b = KernelBuilder::new("late");
        for i in 0..8 {
            b.transfer(TransferPath::GmToUb, gm(i * 1024, 1024), ub(i * 1024, 1024)).unwrap();
        }
        match sim.simulate(&b.build()) {
            Err(SimError::Cancelled { .. }) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    /// A compute-only kernel of `n` instructions: no operands, so no
    /// buffer-capacity limit — an arbitrarily long event stream for
    /// cancellation-latency tests.
    fn long_kernel(n: usize) -> ascend_isa::Kernel {
        let mut b = KernelBuilder::new("long");
        for _ in 0..n {
            b.compute(ComputeUnit::Vector, Precision::Fp16, 64, vec![], vec![]);
        }
        b.build()
    }

    #[test]
    fn deadline_expiry_is_observed_within_the_poll_interval() {
        // A deadline far shorter than the kernel's wall-clock simulation
        // time must preempt the run mid-loop, and because the wall clock
        // is only polled every DEADLINE_POLL_EVENTS events, the preemption
        // event index always lands on a poll boundary — the documented
        // propagation-latency bound.
        let sim = sim().with_cancel(CancelToken::with_timeout(Duration::from_micros(200)));
        match sim.simulate(&long_kernel(1 << 16)) {
            Err(SimError::Cancelled { events, .. }) => {
                assert_eq!(
                    events % DEADLINE_POLL_EVENTS,
                    1,
                    "deadline expiry must be observed at a poll boundary, got event {events}"
                );
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn mid_run_cancel_is_observed_before_completion() {
        // The explicit flag is checked on *every* event, so a cancel
        // issued from another thread mid-loop preempts the run at the
        // next event boundary instead of letting it drain the heap.
        let token = CancelToken::new();
        let sim = sim().with_cancel(token.clone());
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(500));
            token.cancel();
        });
        let result = sim.simulate(&long_kernel(1 << 16));
        canceller.join().unwrap();
        match result {
            Err(SimError::Cancelled { events, forensics, .. }) => {
                assert!(forensics.remaining > 0, "preemption leaves work incomplete");
                assert!(events >= 1);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn untriggered_token_leaves_results_identical() {
        let mut b = KernelBuilder::new("same");
        b.transfer(TransferPath::GmToUb, gm(0, 4096), ub(0, 4096)).unwrap();
        b.sync(ascend_arch::Component::MteGm, ascend_arch::Component::Vector);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 1024, vec![ub(0, 4096)], vec![ub(0, 4096)]);
        let kernel = b.build();
        let plain = sim().simulate(&kernel).unwrap();
        let supervised = sim().with_cancel(CancelToken::new()).simulate(&kernel).unwrap();
        assert_eq!(plain.total_cycles(), supervised.total_cycles());
        assert_eq!(plain.records(), supervised.records());
    }

    #[test]
    fn reused_simulator_repeats_itself_across_kernels_and_errors() {
        // One simulator, many runs, interleaved with runs that fail:
        // every repeat must reproduce the first run exactly, proving the
        // pooled scratch carries no state between runs.
        let sim = sim();
        let mut a = KernelBuilder::new("a");
        let f = a.new_flag();
        a.transfer(TransferPath::GmToUb, gm(0, 4096), ub(0, 4096)).unwrap();
        a.set_flag(Component::MteGm, f);
        a.wait_flag(Component::Vector, f);
        a.compute(ComputeUnit::Vector, Precision::Fp16, 1024, vec![ub(0, 4096)], vec![ub(0, 4096)]);
        let a = a.build();
        let mut b = KernelBuilder::new("b");
        b.transfer(TransferPath::UbToGm, ub(0, 2048), gm(0, 2048)).unwrap();
        b.barrier_all();
        b.transfer(TransferPath::GmToUb, gm(4096, 2048), ub(4096, 2048)).unwrap();
        let b = b.build();
        // A kernel that deadlocks (leaves queues and flags mid-flight).
        let mut stuck = KernelBuilder::new("stuck");
        let g = stuck.new_flag();
        stuck.wait_flag(Component::Vector, g);
        stuck.compute(ComputeUnit::Vector, Precision::Fp16, 64, vec![], vec![]);
        let stuck = stuck.build();

        let first_a = sim.simulate(&a).unwrap();
        let first_b = sim.simulate(&b).unwrap();
        for _ in 0..4 {
            assert!(matches!(sim.simulate_unchecked(&stuck), Err(SimError::Deadlock(_))));
            assert_eq!(sim.simulate(&a).unwrap(), first_a);
            assert_eq!(sim.simulate(&b).unwrap(), first_b);
        }
        assert!(sim.pooled_scratch() >= 1, "runs must return scratch to the pool");
        sim.reset();
        assert_eq!(sim.pooled_scratch(), 0, "reset drops pooled scratch");
        assert_eq!(sim.simulate(&a).unwrap(), first_a, "reset must not change results");
    }

    #[test]
    fn clones_share_the_scratch_pool() {
        let sim = sim();
        let clone = sim.clone();
        let mut b = KernelBuilder::new("shared");
        b.transfer(TransferPath::GmToUb, gm(0, 1024), ub(0, 1024)).unwrap();
        let kernel = b.build();
        clone.simulate(&kernel).unwrap();
        assert!(sim.pooled_scratch() >= 1, "a clone's run warms the shared pool");
        assert_eq!(sim.simulate(&kernel).unwrap(), clone.simulate(&kernel).unwrap());
    }

    #[test]
    fn null_sink_summary_matches_trace() {
        let sim = sim();
        let mut b = KernelBuilder::new("summary");
        b.transfer(TransferPath::GmToUb, gm(0, 4096), ub(0, 4096)).unwrap();
        b.sync(Component::MteGm, Component::Vector);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 2048, vec![ub(0, 4096)], vec![ub(0, 4096)]);
        let kernel = b.build();
        let trace = sim.simulate(&kernel).unwrap();
        let summary = sim.simulate_into(&kernel, &mut NullSink).unwrap();
        assert_eq!(summary.total_cycles, trace.total_cycles());
        assert!(summary.events > 0);
    }

    #[test]
    fn sparse_flag_ids_fall_back_without_changing_semantics() {
        // FlagId::new can mint ids far beyond the dense table cap; the
        // sparse fallback must give them the same counting semantics.
        let sim = sim();
        let make = |flag: FlagId| {
            let mut b = KernelBuilder::new("sparse");
            b.transfer(TransferPath::GmToUb, gm(0, 2048), ub(0, 2048)).unwrap();
            b.set_flag(Component::MteGm, flag);
            b.wait_flag(Component::Vector, flag);
            b.compute(
                ComputeUnit::Vector,
                Precision::Fp16,
                512,
                vec![ub(0, 2048)],
                vec![ub(0, 2048)],
            );
            b.build()
        };
        let dense = sim.simulate(&make(FlagId::new(0))).unwrap();
        let sparse = sim.simulate(&make(FlagId::new(u32::MAX - 1))).unwrap();
        assert_eq!(dense.total_cycles(), sparse.total_cycles());
        for (d, s) in dense.records().iter().zip(sparse.records()) {
            assert_eq!(d.start, s.start);
            assert_eq!(d.end, s.end);
            assert_eq!(d.stall, s.stall);
        }
    }
}
