//! Error type of the simulator.

use ascend_arch::ArchError;
use ascend_isa::IsaError;
use std::error::Error;
use std::fmt;

/// Errors produced while simulating a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The kernel failed static validation before execution.
    Validation(IsaError),
    /// A chip-specification lookup failed during execution.
    Arch(ArchError),
    /// Execution stalled with work remaining (should be prevented by
    /// validation; kept as a defensive runtime check).
    Deadlock {
        /// Number of instructions that never completed.
        remaining: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Validation(err) => write!(f, "kernel validation failed: {err}"),
            SimError::Arch(err) => write!(f, "chip specification lookup failed: {err}"),
            SimError::Deadlock { remaining } => {
                write!(f, "simulation deadlocked with {remaining} instructions outstanding")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Validation(err) => Some(err),
            SimError::Arch(err) => Some(err),
            SimError::Deadlock { .. } => None,
        }
    }
}

impl From<IsaError> for SimError {
    fn from(err: IsaError) -> Self {
        SimError::Validation(err)
    }
}

impl From<ArchError> for SimError {
    fn from(err: ArchError) -> Self {
        SimError::Arch(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_chains() {
        let err = SimError::Validation(IsaError::EmptyKernel);
        assert!(err.source().is_some());
        let err = SimError::Deadlock { remaining: 2 };
        assert!(err.source().is_none());
        assert!(err.to_string().contains("2 instructions"));
    }
}
