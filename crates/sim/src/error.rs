//! Error type of the simulator.

use crate::DeadlockReport;
use ascend_arch::ArchError;
use ascend_isa::IsaError;
use std::error::Error;
use std::fmt;

/// Errors produced while simulating a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The kernel failed static validation before execution.
    Validation(IsaError),
    /// A chip-specification lookup failed during execution, or the chip
    /// specification itself is invalid.
    Arch(ArchError),
    /// Execution stalled with work remaining. Validation rules this out
    /// for accepted kernels; it is reachable through
    /// `simulate_unchecked` and fault injection. The boxed report
    /// carries full forensics — per-queue fronts, blocking causes, and
    /// the flag wait-graph — and renders them through `Display`.
    Deadlock(Box<DeadlockReport>),
    /// The watchdog tripped: execution exceeded its event-count or
    /// simulated-cycle budget before completing. Distinguishes runaway
    /// (possibly livelocked or fault-degraded) runs from true deadlocks.
    BudgetExceeded {
        /// Events processed when the watchdog fired.
        events: u64,
        /// Simulated cycle when the watchdog fired.
        cycles: f64,
        /// The event budget that was in force.
        max_events: u64,
        /// The cycle budget that was in force.
        max_cycles: f64,
    },
    /// The run was preempted through its
    /// [`CancelToken`](crate::CancelToken): a supervisor cancelled it, or
    /// its wall-clock deadline lapsed. The boxed report is a forensics
    /// *snapshot* of the engine at the preemption point (queues may still
    /// have runnable work — unlike a deadlock, nothing is proven stuck).
    Cancelled {
        /// Events processed when the cancellation was noticed.
        events: u64,
        /// Simulated cycle when the cancellation was noticed.
        cycles: f64,
        /// Engine-state snapshot at preemption.
        forensics: Box<DeadlockReport>,
    },
}

impl SimError {
    /// A cancellation noticed *outside* the engine's event loop — at a
    /// pipeline stage boundary, or by a sandbox monitor forcefully
    /// preempting a worker process. No events ran under this error, so
    /// the forensics snapshot is synthetic: it names the preempted stage
    /// where a kernel name would normally go and carries no queue state.
    #[must_use]
    pub fn preempted_at(stage: &str) -> SimError {
        SimError::Cancelled {
            events: 0,
            cycles: 0.0,
            forensics: Box::new(DeadlockReport {
                kernel: format!("<preempted at {stage}>"),
                at_cycle: 0.0,
                total: 0,
                remaining: 0,
                undispatched: 0,
                barrier_pending: false,
                queues: Vec::new(),
                wait_edges: Vec::new(),
            }),
        }
    }

    /// The deadlock forensics, when this error is a deadlock.
    #[must_use]
    pub fn deadlock_report(&self) -> Option<&DeadlockReport> {
        match self {
            SimError::Deadlock(report) => Some(report),
            _ => None,
        }
    }

    /// The engine-state forensics carried by this error, if any: the full
    /// report of a deadlock, or the preemption snapshot of a cancellation.
    #[must_use]
    pub fn forensics(&self) -> Option<&DeadlockReport> {
        match self {
            SimError::Deadlock(report) => Some(report),
            SimError::Cancelled { forensics, .. } => Some(forensics),
            _ => None,
        }
    }

    /// Whether the failure is *transient* — tied to this particular run
    /// (preemption, watchdog) rather than to the kernel or chip — and
    /// therefore worth retrying under a different budget or deadline.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::Cancelled { .. } | SimError::BudgetExceeded { .. })
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Validation(err) => write!(f, "kernel validation failed: {err}"),
            SimError::Arch(err) => write!(f, "chip specification lookup failed: {err}"),
            SimError::Deadlock(report) => report.fmt(f),
            SimError::BudgetExceeded { events, cycles, max_events, max_cycles } => write!(
                f,
                "watchdog budget exceeded after {events} events at cycle {cycles:.0} \
                 (budget: {max_events} events, {max_cycles:.0} cycles)"
            ),
            SimError::Cancelled { events, cycles, forensics } => write!(
                f,
                "simulation cancelled after {events} events at cycle {cycles:.0} \
                 ({} of {} instructions incomplete at preemption)",
                forensics.remaining, forensics.total
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Validation(err) => Some(err),
            SimError::Arch(err) => Some(err),
            SimError::Deadlock(_)
            | SimError::BudgetExceeded { .. }
            | SimError::Cancelled { .. } => None,
        }
    }
}

impl From<IsaError> for SimError {
    fn from(err: IsaError) -> Self {
        SimError::Validation(err)
    }
}

impl From<ArchError> for SimError {
    fn from(err: ArchError) -> Self {
        SimError::Arch(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_chains() {
        let err = SimError::Validation(IsaError::EmptyKernel);
        assert!(err.source().is_some());
        let err =
            SimError::BudgetExceeded { events: 11, cycles: 1e4, max_events: 10, max_cycles: 1e6 };
        assert!(err.source().is_none());
    }

    #[test]
    fn preempted_at_is_transient_and_names_the_stage() {
        let err = SimError::preempted_at("build");
        assert!(err.is_transient());
        let forensics = err.forensics().expect("cancellations carry forensics");
        assert_eq!(forensics.kernel, "<preempted at build>");
        assert_eq!(forensics.remaining, 0);
        assert!(err.to_string().contains("cancelled"));
    }

    #[test]
    fn display_snapshots_stay_stable() {
        let err = SimError::Validation(IsaError::EmptyKernel);
        assert_eq!(err.to_string(), "kernel validation failed: kernel contains no instructions");
        let err = SimError::BudgetExceeded {
            events: 11,
            cycles: 12345.0,
            max_events: 10,
            max_cycles: 1e6,
        };
        assert_eq!(
            err.to_string(),
            "watchdog budget exceeded after 11 events at cycle 12345 \
             (budget: 10 events, 1000000 cycles)"
        );
    }
}
