//! Execution traces: per-instruction timing and per-component occupancy.

use ascend_arch::Component;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Why an instruction did not start the moment it was dispatched.
///
/// This is the per-instruction attribution behind the paper's pipeline
/// inspection (Figure 12): a queue can sit idle because of dispatch
/// distance, because it is draining earlier work, because a `wait_flag`
/// has no producer yet, or because of a spatial dependency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StallCause {
    /// Started as soon as it was dispatched.
    #[default]
    None,
    /// Waited for earlier instructions on the same queue.
    QueueBusy,
    /// Waited on a `wait_flag` whose producer had not fired.
    Flag,
    /// Waited on a memory-region conflict (spatial dependency).
    Region,
}

impl StallCause {
    /// Short lowercase label, e.g. `"region"`.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            StallCause::None => "none",
            StallCause::QueueBusy => "queue",
            StallCause::Flag => "flag",
            StallCause::Region => "region",
        }
    }
}

/// Timing of one executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstrRecord {
    /// Index of the instruction in the kernel's program order.
    pub index: usize,
    /// The queue it executed on (`None` for dispatcher-level barriers).
    pub queue: Option<Component>,
    /// Cycle at which the dispatcher handed the instruction to its queue.
    pub available_at: f64,
    /// Cycle at which execution started.
    pub start: f64,
    /// Cycle at which execution completed.
    pub end: f64,
    /// Why `start` lags `available_at`, if it does.
    pub stall: StallCause,
}

impl InstrRecord {
    /// Execution duration in cycles.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Cycles spent between dispatch and execution start.
    #[must_use]
    pub fn queue_delay(&self) -> f64 {
        self.start - self.available_at
    }
}

/// The full execution trace of one kernel.
///
/// This is the raw material the profiling layer aggregates: per-component
/// busy time, total time, and idle-gap structure (the paper counts "MTE-GM
/// waiting intervals" when evaluating the ping-pong policy, Section 5.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    kernel_name: String,
    records: Vec<InstrRecord>,
    total_cycles: f64,
}

impl Trace {
    /// Assembles a trace (used by the simulator).
    #[must_use]
    pub fn from_parts(
        kernel_name: impl Into<String>,
        records: Vec<InstrRecord>,
        total_cycles: f64,
    ) -> Self {
        Trace { kernel_name: kernel_name.into(), records, total_cycles }
    }

    /// Name of the kernel that produced this trace.
    #[must_use]
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// All instruction records, ordered by program index.
    #[must_use]
    pub fn records(&self) -> &[InstrRecord] {
        &self.records
    }

    /// End-to-end execution time in cycles.
    #[must_use]
    pub fn total_cycles(&self) -> f64 {
        self.total_cycles
    }

    /// Records executed on `component`, sorted by start time.
    #[must_use]
    pub fn records_of(&self, component: Component) -> Vec<InstrRecord> {
        let mut records: Vec<InstrRecord> =
            self.records.iter().copied().filter(|r| r.queue == Some(component)).collect();
        records.sort_by(|a, b| a.start.total_cmp(&b.start));
        records
    }

    /// Total cycles `component` spent executing instructions.
    ///
    /// Within one queue instructions never overlap, so the sum of
    /// durations equals the queue's busy (active) time — the metric the
    /// paper derives from monitoring the instruction queue (Section 3.1).
    #[must_use]
    pub fn busy_cycles(&self, component: Component) -> f64 {
        self.records.iter().filter(|r| r.queue == Some(component)).map(InstrRecord::duration).sum()
    }

    /// The component time ratio `R_component = T_component / T_total`
    /// (paper, Eq. 6). Zero when the trace is empty.
    #[must_use]
    pub fn time_ratio(&self, component: Component) -> f64 {
        if self.total_cycles <= 0.0 {
            return 0.0;
        }
        self.busy_cycles(component) / self.total_cycles
    }

    /// Number of idle gaps longer than `min_gap` cycles between
    /// consecutive instructions of `component`.
    ///
    /// The ping-pong case study reports "MTE-GM waiting intervals reduced
    /// from 14 to 3" — this is that metric.
    #[must_use]
    pub fn waiting_intervals(&self, component: Component, min_gap: f64) -> usize {
        let records = self.records_of(component);
        records.windows(2).filter(|pair| pair[1].start - pair[0].end > min_gap).count()
    }

    /// Total cycles instructions of `component` spent waiting between
    /// dispatch and execution start, attributed to `cause`.
    #[must_use]
    pub fn stall_cycles(&self, component: Component, cause: StallCause) -> f64 {
        self.records
            .iter()
            .filter(|r| r.queue == Some(component) && r.stall == cause)
            .map(InstrRecord::queue_delay)
            .sum()
    }

    /// Serializes the trace in the Chrome trace-event format (load the
    /// output in `chrome://tracing` or Perfetto). One track per
    /// component; event names come from `labels` when provided (indexed
    /// by instruction), else the instruction index.
    #[must_use]
    pub fn to_chrome_trace(&self, labels: Option<&[String]>) -> String {
        let mut out = String::from("[");
        for (i, r) in self.records.iter().enumerate() {
            let tid = r.queue.map_or(9, |q| q.index());
            let track = r.queue.map_or("barrier", |q| q.name());
            let name = labels
                .and_then(|l| l.get(r.index))
                .cloned()
                .unwrap_or_else(|| format!("instr {}", r.index));
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"stall\":\"{}\",\"queue_delay\":{:.3}}}}}",
                name.replace('\"', "'"),
                track,
                r.start,
                r.duration(),
                tid,
                r.stall.label(),
                r.queue_delay()
            );
        }
        out.push(']');
        out
    }

    /// Windowed busy fraction of `component`: the execution time is cut
    /// into `buckets` equal windows, each reporting the fraction of the
    /// window the component spent executing.
    #[must_use]
    pub fn utilization_series(&self, component: Component, buckets: usize) -> Vec<f64> {
        let buckets = buckets.max(1);
        let mut series = vec![0.0f64; buckets];
        if self.total_cycles <= 0.0 {
            return series;
        }
        let width = self.total_cycles / buckets as f64;
        for record in self.records.iter().filter(|r| r.queue == Some(component)) {
            let first = ((record.start / width).floor() as usize).min(buckets - 1);
            let last = ((record.end / width).ceil() as usize).min(buckets);
            for (b, slot) in series.iter_mut().enumerate().take(last).skip(first) {
                let lo = b as f64 * width;
                let hi = lo + width;
                let overlap = (record.end.min(hi) - record.start.max(lo)).max(0.0);
                *slot += overlap / width;
            }
        }
        for v in &mut series {
            *v = v.min(1.0);
        }
        series
    }

    /// A one-line Unicode sparkline of [`Trace::utilization_series`].
    #[must_use]
    pub fn utilization_sparkline(&self, component: Component, buckets: usize) -> String {
        const BARS: [char; 8] = [
            '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
            '\u{2588}',
        ];
        self.utilization_series(component, buckets)
            .into_iter()
            .map(|v| BARS[((v * 7.0).round() as usize).min(7)])
            .collect()
    }

    /// Renders an ASCII Gantt chart, one row per component, `width`
    /// characters across the full execution time.
    ///
    /// `#` marks executing time, `.` idle time.
    #[must_use]
    pub fn gantt_ascii(&self, width: usize) -> String {
        let width = width.max(10);
        let mut out = String::new();
        let _ = writeln!(out, "{} — {:.0} cycles", self.kernel_name, self.total_cycles);
        for component in Component::ALL {
            let mut row = vec!['.'; width];
            for record in self.records_of(component) {
                if self.total_cycles <= 0.0 {
                    continue;
                }
                let a = (record.start / self.total_cycles * width as f64).floor() as usize;
                let b = (record.end / self.total_cycles * width as f64).ceil() as usize;
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *cell = '#';
                }
            }
            let _ = writeln!(out, "{:>7} |{}|", component.name(), row.iter().collect::<String>());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_parts(
            "t",
            vec![
                InstrRecord {
                    index: 0,
                    queue: Some(Component::MteGm),
                    available_at: 0.0,
                    start: 0.0,
                    end: 10.0,
                    stall: StallCause::None,
                },
                InstrRecord {
                    index: 1,
                    queue: Some(Component::Vector),
                    available_at: 2.0,
                    start: 10.0,
                    end: 15.0,
                    stall: StallCause::Flag,
                },
                InstrRecord {
                    index: 2,
                    queue: Some(Component::MteGm),
                    available_at: 12.0,
                    start: 20.0,
                    end: 30.0,
                    stall: StallCause::Region,
                },
            ],
            30.0,
        )
    }

    #[test]
    fn busy_and_ratio() {
        let t = sample();
        assert_eq!(t.busy_cycles(Component::MteGm), 20.0);
        assert!((t.time_ratio(Component::MteGm) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.busy_cycles(Component::Cube), 0.0);
    }

    #[test]
    fn waiting_intervals_counts_gaps() {
        let t = sample();
        assert_eq!(t.waiting_intervals(Component::MteGm, 1.0), 1);
        assert_eq!(t.waiting_intervals(Component::MteGm, 15.0), 0);
        assert_eq!(t.waiting_intervals(Component::Vector, 0.1), 0);
    }

    #[test]
    fn gantt_renders_all_components() {
        let text = sample().gantt_ascii(40);
        for c in Component::ALL {
            assert!(text.contains(c.name()), "missing row for {c}");
        }
        assert!(text.contains('#'));
    }

    #[test]
    fn utilization_series_integrates_to_busy_time() {
        let t = sample();
        let series = t.utilization_series(Component::MteGm, 30);
        let integrated: f64 = series.iter().sum::<f64>() * (t.total_cycles() / 30.0);
        assert!((integrated - t.busy_cycles(Component::MteGm)).abs() < 1.5);
        let spark = t.utilization_sparkline(Component::MteGm, 10);
        assert_eq!(spark.chars().count(), 10);
    }

    #[test]
    fn stall_attribution_sums_by_cause() {
        let t = sample();
        assert_eq!(t.stall_cycles(Component::Vector, StallCause::Flag), 8.0);
        assert_eq!(t.stall_cycles(Component::MteGm, StallCause::Region), 8.0);
        assert_eq!(t.stall_cycles(Component::MteGm, StallCause::None), 0.0);
    }

    #[test]
    fn chrome_trace_is_json_like() {
        let t = sample();
        let json = t.to_chrome_trace(None);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("mte-gm"));
        let labeled = t.to_chrome_trace(Some(&["a".into(), "b".into(), "c".into()]));
        assert!(labeled.contains("\"name\":\"b\""));
    }

    #[test]
    fn empty_trace_is_well_behaved() {
        let t = Trace::from_parts("empty", vec![], 0.0);
        assert_eq!(t.time_ratio(Component::Cube), 0.0);
        assert_eq!(t.waiting_intervals(Component::Cube, 1.0), 0);
        let _ = t.gantt_ascii(20);
    }
}
