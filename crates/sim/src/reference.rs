//! The seed (pre-arena) engine, kept verbatim as a differential oracle.
//!
//! This module is a faithful copy of the event loop as it existed before
//! the hot-path rewrite: a `HashMap` flag table, six freshly allocated
//! `VecDeque` component queues, a freshly allocated `BinaryHeap` event
//! queue, and a fully materialized record arena — all constructed per
//! simulate call. It exists for two reasons:
//!
//! 1. **Bit-identity.** The golden differential suite executes every
//!    workload on both engines and requires identical cycle counts,
//!    identical traces, and identical error verdicts. Any divergence in
//!    the rewritten engine is a bug, caught by tests rather than by
//!    inspection.
//! 2. **A perf trajectory.** The bench harness times both engines with
//!    the same harness on the same kernels, so `BENCH_*.json` reports the
//!    rewrite's speedup against the seed engine measured honestly, not
//!    against a remembered number.
//!
//! Since the online audit tier landed it also serves as the *trusted
//! oracle at runtime*: sampled results are shadow re-executed here, and a
//! demoted pipeline answers every request from this engine. For that role
//! it carries the same supervision surface as the production engine
//! (budget + cancellation), defaulting to the unsupervised seed behavior
//! so the differential suite stays byte-identical.

use crate::engine::DEADLINE_POLL_EVENTS;
use crate::trace::StallCause;
use crate::{CancelToken, InstrRecord, SimBudget, SimError, Trace};
use ascend_arch::ChipSpec;
use ascend_faults::FaultPlan;
use ascend_isa::{validate, Instruction, Kernel};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// The seed engine behind a minimal simulator surface.
///
/// Only the entry points the differential suite, the audit tier, and the
/// bench harness need: validated, unchecked, and faulted simulation. It
/// has the same supervision surface as the production engine — a
/// [`SimBudget`] watchdog and an optional [`CancelToken`] — so a shadow
/// audit re-executed on the oracle can be preempted exactly like any
/// other attempt and can never hang its caller. Both default to the
/// unsupervised seed behavior (unlimited budget, no token), which keeps
/// the golden differential suite byte-identical.
#[derive(Debug, Clone)]
pub struct ReferenceSimulator {
    chip: ChipSpec,
    budget: SimBudget,
    cancel: Option<CancelToken>,
}

impl ReferenceSimulator {
    /// Creates a reference simulator for `chip`.
    #[must_use]
    pub fn new(chip: ChipSpec) -> Self {
        ReferenceSimulator { chip, budget: SimBudget::unlimited(), cancel: None }
    }

    /// The chip this simulator models.
    #[must_use]
    pub fn chip(&self) -> &ChipSpec {
        &self.chip
    }

    /// Bounds every subsequent run by `budget` (mirrors
    /// [`crate::Simulator::with_budget`]).
    #[must_use]
    pub fn with_budget(mut self, budget: SimBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a cancellation token checked inside the event loop
    /// (mirrors [`crate::Simulator::with_cancel`]).
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The watchdog budget bounding every run.
    #[must_use]
    pub fn budget(&self) -> SimBudget {
        self.budget
    }

    /// Executes `kernel` with static validation (the seed code path).
    ///
    /// # Errors
    ///
    /// As the production engine: validation, arch-lookup, deadlock,
    /// budget, and cancellation errors.
    pub fn simulate(&self, kernel: &Kernel) -> Result<Trace, SimError> {
        validate(kernel, &self.chip)?;
        Run::new(kernel, &self.chip, None, self.budget, self.cancel.as_ref()).execute()
    }

    /// Executes `kernel` without static validation.
    ///
    /// # Errors
    ///
    /// As [`ReferenceSimulator::simulate`], minus validation.
    pub fn simulate_unchecked(&self, kernel: &Kernel) -> Result<Trace, SimError> {
        Run::new(kernel, &self.chip, None, self.budget, self.cancel.as_ref()).execute()
    }

    /// Executes `kernel` under `plan`, mirroring the production
    /// fault-injection semantics (derived chip must validate, derived
    /// kernel is not re-validated).
    ///
    /// # Errors
    ///
    /// As the production engine's fault path.
    pub fn simulate_with_faults(
        &self,
        kernel: &Kernel,
        plan: &FaultPlan,
    ) -> Result<Trace, SimError> {
        let chip = plan.apply_to_chip(&self.chip);
        chip.validate()?;
        let kernel = plan.apply_to_kernel(kernel);
        Run::new(&kernel, &chip, Some(plan), self.budget, self.cancel.as_ref()).execute()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Complete(usize),
    Wake,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then_with(|| match (self.kind, other.kind) {
            (EventKind::Complete(a), EventKind::Complete(b)) => a.cmp(&b),
            (EventKind::Complete(_), EventKind::Wake) => std::cmp::Ordering::Less,
            (EventKind::Wake, EventKind::Complete(_)) => std::cmp::Ordering::Greater,
            (EventKind::Wake, EventKind::Wake) => std::cmp::Ordering::Equal,
        })
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The seed `Run`: every structure below is allocated per simulate call.
struct Run<'a> {
    kernel: &'a Kernel,
    chip: &'a ChipSpec,
    faults: Option<&'a FaultPlan>,
    budget: SimBudget,
    cancel: Option<&'a CancelToken>,
    dispatch_free: f64,
    next_dispatch: usize,
    barrier_pending: bool,
    last_completion: f64,
    pending: [VecDeque<(usize, f64)>; 6],
    busy_until: [f64; 6],
    wake_scheduled: [f64; 6],
    executing: Vec<usize>,
    block_reason: [Option<StallCause>; 6],
    flags: HashMap<u32, u64>,
    records: Vec<Option<InstrRecord>>,
    outstanding: usize,
    completed: usize,
    events: BinaryHeap<Reverse<Event>>,
}

impl<'a> Run<'a> {
    fn new(
        kernel: &'a Kernel,
        chip: &'a ChipSpec,
        faults: Option<&'a FaultPlan>,
        budget: SimBudget,
        cancel: Option<&'a CancelToken>,
    ) -> Self {
        Run {
            kernel,
            chip,
            faults,
            budget,
            cancel,
            dispatch_free: 0.0,
            next_dispatch: 0,
            barrier_pending: false,
            last_completion: 0.0,
            pending: Default::default(),
            busy_until: [0.0; 6],
            wake_scheduled: [-1.0; 6],
            executing: Vec::new(),
            block_reason: [None; 6],
            flags: HashMap::new(),
            records: vec![None; kernel.len()],
            outstanding: 0,
            completed: 0,
            events: BinaryHeap::new(),
        }
    }

    fn execute(mut self) -> Result<Trace, SimError> {
        let mut processed: u64 = 0;
        self.dispatch();
        self.try_start_all(0.0)?;
        while let Some(Reverse(event)) = self.events.pop() {
            let now = event.time;
            // Same supervision idiom as the production engine: the
            // budget every event, the cancel flag every event (one
            // atomic load), the wall-clock deadline only every
            // `DEADLINE_POLL_EVENTS` events.
            processed += 1;
            if processed > self.budget.max_events || now > self.budget.max_cycles {
                return Err(SimError::BudgetExceeded {
                    events: processed,
                    cycles: now,
                    max_events: self.budget.max_events,
                    max_cycles: self.budget.max_cycles,
                });
            }
            if let Some(token) = self.cancel {
                if token.is_signalled()
                    || (processed % DEADLINE_POLL_EVENTS == 1 && token.is_expired())
                {
                    return Err(SimError::Cancelled {
                        events: processed,
                        cycles: now,
                        forensics: Box::new(self.snapshot()),
                    });
                }
            }
            if let EventKind::Complete(index) = event.kind {
                self.finish(index, now);
            }
            self.try_start_all(now)?;
        }
        if self.completed != self.kernel.len() || self.records.iter().any(Option::is_none) {
            return Err(SimError::Deadlock(Box::new(self.snapshot())));
        }
        let records: Vec<InstrRecord> = self.records.into_iter().flatten().collect();
        let total = records.iter().map(|r| r.end).fold(0.0, f64::max);
        Ok(Trace::from_parts(self.kernel.name(), records, total))
    }

    /// Progress snapshot attached to deadlock and cancellation errors.
    /// The seed engine keeps it slim (no per-queue detail) — forensic
    /// depth is the production engine's job.
    fn snapshot(&self) -> crate::DeadlockReport {
        crate::DeadlockReport {
            kernel: self.kernel.name().to_string(),
            at_cycle: self.last_completion,
            total: self.kernel.len(),
            remaining: self.kernel.len() - self.completed,
            undispatched: self.kernel.len() - self.next_dispatch,
            barrier_pending: self.barrier_pending,
            queues: Vec::new(),
            wait_edges: Vec::new(),
        }
    }

    fn dispatch(&mut self) {
        while !self.barrier_pending && self.next_dispatch < self.kernel.len() {
            let index = self.next_dispatch;
            let instr = &self.kernel.instructions()[index];
            match instr.queue() {
                None => {
                    if self.outstanding == 0 {
                        let start = self.dispatch_free.max(self.last_completion);
                        let end = start + self.chip.barrier_cycles;
                        self.records[index] = Some(InstrRecord {
                            index,
                            queue: None,
                            available_at: self.dispatch_free,
                            start,
                            end,
                            stall: StallCause::None,
                        });
                        self.dispatch_free = end;
                        self.completed += 1;
                        self.next_dispatch += 1;
                    } else {
                        self.barrier_pending = true;
                    }
                }
                Some(queue) => {
                    self.dispatch_free += self.chip.dispatch_cycles;
                    self.pending[queue.index()].push_back((index, self.dispatch_free));
                    self.outstanding += 1;
                    self.next_dispatch += 1;
                }
            }
        }
    }

    fn finish(&mut self, index: usize, now: f64) {
        self.executing.retain(|&i| i != index);
        self.outstanding -= 1;
        self.completed += 1;
        self.last_completion = self.last_completion.max(now);
        if let Instruction::SetFlag { flag, .. } = &self.kernel.instructions()[index] {
            *self.flags.entry(flag.raw()).or_default() += 1;
        }
        if self.barrier_pending && self.outstanding == 0 {
            self.barrier_pending = false;
            self.dispatch();
        }
    }

    fn try_start_all(&mut self, now: f64) -> Result<(), SimError> {
        for component in ascend_arch::Component::ALL {
            self.try_start(component, now)?;
        }
        Ok(())
    }

    fn try_start(&mut self, component: ascend_arch::Component, now: f64) -> Result<(), SimError> {
        let q = component.index();
        if self.busy_until[q] > now {
            return Ok(());
        }
        let Some(&(index, available)) = self.pending[q].front() else {
            return Ok(());
        };
        if available > now {
            self.schedule_wake(q, available);
            return Ok(());
        }
        let instr = &self.kernel.instructions()[index];
        match instr {
            Instruction::WaitFlag { flag, .. } => {
                let count = self.flags.entry(flag.raw()).or_default();
                if *count == 0 {
                    self.block_reason[q] = Some(StallCause::Flag);
                    return Ok(());
                }
                *count -= 1;
            }
            Instruction::Compute(_) | Instruction::Transfer(_) => {
                if self.has_region_conflict(index) {
                    self.block_reason[q] = Some(StallCause::Region);
                    return Ok(());
                }
            }
            Instruction::SetFlag { .. } => {}
            Instruction::Barrier => unreachable!("barriers are dispatcher-level"),
        }
        let stall = match self.block_reason[q].take() {
            Some(cause) => cause,
            None if now > available + 1e-9 => StallCause::QueueBusy,
            None => StallCause::None,
        };
        let mut duration = self.duration(instr)?;
        if let Some(plan) = self.faults {
            duration *= plan.latency_factor(index);
        }
        let end = now + duration;
        self.records[index] = Some(InstrRecord {
            index,
            queue: Some(component),
            available_at: available,
            start: now,
            end,
            stall,
        });
        self.busy_until[q] = end;
        self.pending[q].pop_front();
        self.executing.push(index);
        self.events.push(Reverse(Event { time: end, kind: EventKind::Complete(index) }));
        Ok(())
    }

    fn has_region_conflict(&self, index: usize) -> bool {
        let instr = &self.kernel.instructions()[index];
        self.executing.iter().any(|&other| instr.conflicts_with(&self.kernel.instructions()[other]))
    }

    fn schedule_wake(&mut self, q: usize, at: f64) {
        if self.wake_scheduled[q] == at {
            return;
        }
        self.wake_scheduled[q] = at;
        self.events.push(Reverse(Event { time: at, kind: EventKind::Wake }));
    }

    fn duration(&self, instr: &Instruction) -> Result<f64, SimError> {
        Ok(match instr {
            Instruction::Compute(c) => {
                let peak = self.chip.peak_ops_per_cycle(c.unit, c.precision)?;
                self.chip.compute_issue_cycles + c.ops as f64 / peak
            }
            Instruction::Transfer(t) => self.chip.transfer(t.path)?.cycles(t.bytes()),
            Instruction::SetFlag { .. } | Instruction::WaitFlag { .. } => self.chip.flag_cycles,
            Instruction::Barrier => unreachable!("barriers are dispatcher-level"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_arch::{Buffer, Component, ComputeUnit, Precision, TransferPath};
    use ascend_isa::{KernelBuilder, Region};

    #[test]
    fn reference_matches_itself_deterministically() {
        let sim = ReferenceSimulator::new(ChipSpec::training());
        let mut b = KernelBuilder::new("det");
        let gm = Region::new(Buffer::Gm, 0, 4096);
        let ub = Region::new(Buffer::Ub, 0, 4096);
        b.transfer(TransferPath::GmToUb, gm, ub).unwrap();
        b.sync(Component::MteGm, Component::Vector);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 1024, vec![ub], vec![ub]);
        let kernel = b.build();
        let a = sim.simulate(&kernel).unwrap();
        let b = sim.simulate(&kernel).unwrap();
        assert_eq!(a, b);
    }

    fn busy_kernel() -> Kernel {
        let mut b = KernelBuilder::new("busy");
        let gm = Region::new(Buffer::Gm, 0, 4096);
        let ub = Region::new(Buffer::Ub, 0, 4096);
        for _ in 0..32 {
            b.transfer(TransferPath::GmToUb, gm, ub).unwrap();
            b.sync(Component::MteGm, Component::Vector);
            b.compute(ComputeUnit::Vector, Precision::Fp16, 1024, vec![ub], vec![ub]);
        }
        b.build()
    }

    #[test]
    fn reference_event_budget_trips() {
        let sim = ReferenceSimulator::new(ChipSpec::training())
            .with_budget(SimBudget { max_events: 4, max_cycles: f64::INFINITY });
        match sim.simulate(&busy_kernel()) {
            Err(SimError::BudgetExceeded { events, max_events, .. }) => {
                assert_eq!(events, 5);
                assert_eq!(max_events, 4);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn reference_cycle_budget_trips() {
        let sim = ReferenceSimulator::new(ChipSpec::training())
            .with_budget(SimBudget { max_events: u64::MAX, max_cycles: 1.0 });
        match sim.simulate(&busy_kernel()) {
            Err(SimError::BudgetExceeded { cycles, .. }) => assert!(cycles > 1.0),
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn reference_pre_cancelled_token_preempts() {
        let token = CancelToken::new();
        token.cancel();
        let sim = ReferenceSimulator::new(ChipSpec::training()).with_cancel(token);
        match sim.simulate(&busy_kernel()) {
            Err(SimError::Cancelled { events, forensics, .. }) => {
                assert_eq!(events, 1);
                assert_eq!(forensics.kernel, "busy");
                assert!(forensics.remaining > 0);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn reference_expired_deadline_preempts() {
        let token = CancelToken::with_deadline(std::time::Instant::now());
        let sim = ReferenceSimulator::new(ChipSpec::training()).with_cancel(token);
        match sim.simulate(&busy_kernel()) {
            Err(SimError::Cancelled { .. }) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn reference_defaults_stay_unsupervised() {
        let sim = ReferenceSimulator::new(ChipSpec::training());
        assert_eq!(sim.budget(), SimBudget::unlimited());
        sim.simulate(&busy_kernel()).unwrap();
    }
}
