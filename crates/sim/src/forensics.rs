//! Deadlock forensics: a structured snapshot of engine state at the
//! moment execution stalled.
//!
//! When the event loop drains with instructions still outstanding, the
//! engine used to report only a count. That is useless for debugging a
//! generated or fault-mutated kernel: *which* queue is stuck, on *what*,
//! and *where are the missing producers*? [`DeadlockReport`] answers all
//! three, and its [`Display`](std::fmt::Display) impl renders the answer
//! as the multi-line diagnostic the bench binaries print.

use ascend_arch::Component;
use ascend_isa::Instruction;
use std::fmt;

/// Why a queue's front instruction cannot start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockCause {
    /// The front instruction is a `wait_flag` and the flag's counter is
    /// zero: every producer either already ran (counts consumed by earlier
    /// waits) or is itself stuck. See the report's wait edges for the
    /// producers that never completed.
    Flag {
        /// Raw id of the awaited flag.
        flag: u32,
    },
    /// The front instruction overlaps a region of a still-executing
    /// instruction (spatial dependency).
    Region {
        /// Index of the executing instruction it conflicts with.
        conflicting_with: usize,
    },
    /// The instruction is runnable as far as the engine can tell; it
    /// simply never reached the front of its queue in time. Seen on
    /// queues behind a stalled dispatcher.
    NotStarted,
}

impl fmt::Display for BlockCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockCause::Flag { flag } => write!(f, "blocked waiting on flag f{flag}"),
            BlockCause::Region { conflicting_with } => {
                write!(f, "blocked on a region conflict with #{conflicting_with}")
            }
            BlockCause::NotStarted => write!(f, "never started"),
        }
    }
}

/// The state of one component queue at stall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueState {
    /// The component whose queue this is.
    pub queue: Component,
    /// Number of dispatched-but-unfinished instructions in the queue.
    pub depth: usize,
    /// Kernel index of the instruction at the front of the queue.
    pub front_index: usize,
    /// The front instruction, rendered in the kernel text syntax.
    pub front_instr: String,
    /// Why the front instruction cannot start.
    pub cause: BlockCause,
}

/// Where an unfinished `set_flag` producer is stuck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetterLocation {
    /// Dispatched, sitting in (or behind the front of) this queue.
    Queued(Component),
    /// The dispatcher never reached it (it sits after a pending barrier).
    Undispatched,
}

/// One unfinished producer of an awaited flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingSetter {
    /// Kernel index of the `set_flag` instruction.
    pub index: usize,
    /// Where that instruction is stuck.
    pub location: SetterLocation,
}

/// One edge of the flag wait-graph: a queue waiting on a flag, plus every
/// producer of that flag that never completed. An empty `pending_setters`
/// list is the signature of an unmatched wait — nothing will ever satisfy
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEdge {
    /// The queue whose front instruction is the wait.
    pub waiter: Component,
    /// Raw id of the awaited flag.
    pub flag: u32,
    /// Every `set_flag` of this flag that has not completed.
    pub pending_setters: Vec<PendingSetter>,
}

/// Everything the engine knew at the moment it stalled.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlockReport {
    /// Name of the kernel that deadlocked.
    pub kernel: String,
    /// Simulated cycle at which the last event was processed.
    pub at_cycle: f64,
    /// Total number of instructions in the kernel.
    pub total: usize,
    /// Number of instructions that never completed.
    pub remaining: usize,
    /// Number of instructions the dispatcher never handed to a queue.
    pub undispatched: usize,
    /// True when the dispatcher itself is stalled at a `pipe_barrier`.
    pub barrier_pending: bool,
    /// Per-queue state, one entry per non-empty queue.
    pub queues: Vec<QueueState>,
    /// The flag wait-graph at stall time.
    pub wait_edges: Vec<WaitEdge>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadlock in kernel `{}` at cycle {:.0}: {} of {} instructions never completed",
            self.kernel, self.at_cycle, self.remaining, self.total
        )?;
        if self.undispatched > 0 {
            write!(f, "; {} undispatched", self.undispatched)?;
        }
        if self.barrier_pending {
            write!(f, "; dispatcher stalled at a barrier")?;
        }
        for q in &self.queues {
            write!(
                f,
                "\n  queue {}: depth {}, front #{} `{}` — {}",
                q.queue, q.depth, q.front_index, q.front_instr, q.cause
            )?;
        }
        for edge in &self.wait_edges {
            write!(f, "\n  flag f{}: {} waits", edge.flag, edge.waiter)?;
            if edge.pending_setters.is_empty() {
                write!(f, "; no pending set_flag — the wait is unmatched")?;
            } else {
                write!(f, "; pending setters:")?;
                for setter in &edge.pending_setters {
                    match setter.location {
                        SetterLocation::Queued(queue) => {
                            write!(f, " #{} (queued on {})", setter.index, queue)?;
                        }
                        SetterLocation::Undispatched => {
                            write!(f, " #{} (undispatched)", setter.index)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Renders one instruction in the kernel text syntax (compact form).
pub(crate) fn instr_text(instr: &Instruction) -> String {
    match instr {
        Instruction::Transfer(t) => format!("move {} {}B", t.path, t.bytes()),
        Instruction::Compute(c) => format!("{}.{} {}", c.unit, c.precision, c.ops),
        Instruction::SetFlag { queue, flag } => format!("set f{} @{}", flag.raw(), queue),
        Instruction::WaitFlag { queue, flag } => format!("wait f{} @{}", flag.raw(), queue),
        Instruction::Barrier => "barrier".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_every_section() {
        let report = DeadlockReport {
            kernel: "stuck".to_string(),
            at_cycle: 41.7,
            total: 6,
            remaining: 3,
            undispatched: 1,
            barrier_pending: true,
            queues: vec![QueueState {
                queue: Component::Vector,
                depth: 2,
                front_index: 4,
                front_instr: "wait f1 @vector".to_string(),
                cause: BlockCause::Flag { flag: 1 },
            }],
            wait_edges: vec![WaitEdge {
                waiter: Component::Vector,
                flag: 1,
                pending_setters: vec![PendingSetter {
                    index: 5,
                    location: SetterLocation::Undispatched,
                }],
            }],
        };
        let text = report.to_string();
        assert!(text.contains("deadlock in kernel `stuck` at cycle 42"), "{text}");
        assert!(text.contains("3 of 6 instructions never completed"), "{text}");
        assert!(text.contains("1 undispatched"), "{text}");
        assert!(text.contains("dispatcher stalled at a barrier"), "{text}");
        assert!(text.contains("queue vector: depth 2, front #4 `wait f1 @vector`"), "{text}");
        assert!(text.contains("blocked waiting on flag f1"), "{text}");
        assert!(
            text.contains("flag f1: vector waits; pending setters: #5 (undispatched)"),
            "{text}"
        );
    }

    #[test]
    fn unmatched_wait_is_called_out() {
        let report = DeadlockReport {
            kernel: "orphan".to_string(),
            at_cycle: 0.0,
            total: 1,
            remaining: 1,
            undispatched: 0,
            barrier_pending: false,
            queues: vec![],
            wait_edges: vec![WaitEdge {
                waiter: Component::Cube,
                flag: 0,
                pending_setters: vec![],
            }],
        };
        assert!(report.to_string().contains("no pending set_flag — the wait is unmatched"));
    }
}
