//! ERT-style empirical calibration (cf. the Empirical Roofline Toolkit
//! the paper builds on, Section 2.3): saturation micro-kernels that
//! measure the *achieved* ceilings of the simulated chip, path by path
//! and precision by precision.
//!
//! On real hardware these micro-benchmarks discover the practical
//! ceilings that nominal datasheets overstate; here they validate that
//! the simulator's achieved rates converge to the chip specification as
//! granularity grows — and quantify how far small granularities fall
//! short, which is the roofline model's bandwidth-ceiling input.

use crate::Profiler;
use ascend_arch::{Buffer, ChipSpec, ComputeUnit, Precision, TransferPath};
use ascend_isa::{BufferAllocator, KernelBuilder};
use ascend_sim::SimError;
use serde::{Deserialize, Serialize};

/// Result of one calibration micro-kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationPoint {
    /// What was measured, e.g. `"gm->ub"` or `"cube/fp16"`.
    pub target: String,
    /// Work granularity (bytes per transfer, or ops per instruction).
    pub granularity: u64,
    /// Achieved rate (bytes/cycle or ops/cycle).
    pub achieved: f64,
    /// The specification's peak rate.
    pub peak: f64,
}

impl CalibrationPoint {
    /// Achieved fraction of the specified peak.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.peak > 0.0 {
            self.achieved / self.peak
        } else {
            0.0
        }
    }
}

/// Measures the achieved bandwidth of one MTE transfer path with a
/// back-to-back streaming kernel of `repeats` transfers of `bytes` each.
///
/// # Errors
///
/// Propagates simulator errors; fails if the staging tile does not fit
/// the destination buffer.
pub fn measure_bandwidth(
    chip: &ChipSpec,
    path: TransferPath,
    bytes: u64,
    repeats: u64,
) -> Result<CalibrationPoint, SimError> {
    let mut alloc = BufferAllocator::new(chip);
    let mut b = KernelBuilder::new(format!("ert_{path}"));
    // Stage in the path's endpoints; recycle the on-chip side, stride the
    // GM side.
    let (src_onchip, dst_onchip) = (path.src() != Buffer::Gm, path.dst() != Buffer::Gm);
    let onchip_src = if src_onchip { Some(alloc.alloc(path.src(), bytes)?) } else { None };
    let onchip_dst = if dst_onchip { Some(alloc.alloc(path.dst(), bytes)?) } else { None };
    for i in 0..repeats {
        let src = match onchip_src {
            Some(region) => region,
            None => alloc.alloc(Buffer::Gm, bytes)?,
        };
        let dst = match onchip_dst {
            Some(region) => region,
            None => alloc.alloc(Buffer::Gm, bytes)?,
        };
        let _ = i;
        b.transfer(path, src, dst)?;
    }
    let (profile, trace) = Profiler::new(chip.clone()).run(&b.build())?;
    let achieved = profile.bytes_on_path(path) as f64 / trace.total_cycles();
    let peak = chip.transfer(path)?.bytes_per_cycle;
    Ok(CalibrationPoint { target: path.to_string(), granularity: bytes, achieved, peak })
}

/// Measures the achieved arithmetic rate of one precision on one unit
/// with `repeats` back-to-back compute instructions of `ops` each.
///
/// # Errors
///
/// Propagates simulator errors; fails for unsupported precisions.
pub fn measure_compute(
    chip: &ChipSpec,
    unit: ComputeUnit,
    precision: Precision,
    ops: u64,
    repeats: u64,
) -> Result<CalibrationPoint, SimError> {
    let mut b = KernelBuilder::new(format!("ert_{unit}_{precision}"));
    for _ in 0..repeats {
        b.compute(unit, precision, ops, vec![], vec![]);
    }
    let (profile, trace) = Profiler::new(chip.clone()).run(&b.build())?;
    let achieved = profile.ops_of(unit, precision) as f64 / trace.total_cycles();
    let peak = chip.peak_ops_per_cycle(unit, precision)?;
    Ok(CalibrationPoint { target: format!("{unit}/{precision}"), granularity: ops, achieved, peak })
}

/// Runs the full calibration sweep: every MTE path at a large granularity
/// and every precision-compute unit at a large instruction size.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn calibrate(chip: &ChipSpec) -> Result<Vec<CalibrationPoint>, SimError> {
    let mut points = Vec::new();
    for path in TransferPath::mte_paths() {
        // Use a granularity that fits the destination buffer.
        let cap = chip
            .capacity(path.dst())
            .unwrap_or(u64::MAX)
            .min(chip.capacity(path.src()).unwrap_or(u64::MAX));
        let bytes = (cap / 2).clamp(1 << 10, 128 << 10);
        points.push(measure_bandwidth(chip, path, bytes, 32)?);
    }
    for unit in ComputeUnit::ALL {
        for &precision in unit.precisions() {
            let peak = chip.peak_ops_per_cycle(unit, precision)?;
            // Enough ops to amortize the issue cost far past 99%.
            let ops = (peak * chip.compute_issue_cycles * 256.0) as u64;
            points.push(measure_compute(chip, unit, precision, ops, 16)?);
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_transfers_approach_the_specified_peak() {
        let chip = ChipSpec::training();
        let point = measure_bandwidth(&chip, TransferPath::GmToUb, 100 << 10, 16).unwrap();
        assert!(
            point.fraction() > 0.9,
            "100 KiB streaming should be near peak, got {:.1}%",
            point.fraction() * 100.0
        );
        assert!(point.fraction() <= 1.0 + 1e-9, "never above spec");
    }

    #[test]
    fn small_transfers_fall_well_short() {
        let chip = ChipSpec::training();
        let point = measure_bandwidth(&chip, TransferPath::UbToGm, 1 << 10, 64).unwrap();
        assert!(
            point.fraction() < 0.30,
            "1 KiB transfers should waste most of the bandwidth, got {:.1}%",
            point.fraction() * 100.0
        );
    }

    #[test]
    fn large_compute_instructions_approach_the_peak() {
        let chip = ChipSpec::training();
        let point =
            measure_compute(&chip, ComputeUnit::Vector, Precision::Fp16, 1 << 20, 8).unwrap();
        assert!(point.fraction() > 0.95, "got {:.3}", point.fraction());
        assert!(point.fraction() <= 1.0 + 1e-9);
    }

    #[test]
    fn full_sweep_covers_all_paths_and_precisions() {
        let chip = ChipSpec::training();
        let points = calibrate(&chip).unwrap();
        // 9 MTE paths + 9 precision-compute units.
        assert_eq!(points.len(), 18);
        for point in &points {
            assert!(
                point.fraction() > 0.80 && point.fraction() <= 1.0 + 1e-9,
                "{}: achieved {:.1}% of peak",
                point.target,
                point.fraction() * 100.0
            );
        }
    }

    #[test]
    fn inference_chip_calibrates_too() {
        let chip = ChipSpec::inference();
        let points = calibrate(&chip).unwrap();
        assert_eq!(points.len(), 18);
    }
}
