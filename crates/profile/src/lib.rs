#![warn(missing_docs)]

//! Profiling layer: turns simulator traces into the metric set the
//! component-based roofline model consumes.
//!
//! The paper's workflow (Section 3.2) filters, from `msprof`-style
//! profiling, exactly these per-operator metrics:
//!
//! - the number of **operations per precision** on each compute unit;
//! - the number of **bytes per transfer path** on each MTE;
//! - the **execution (active) time of each component**, estimated from the
//!   non-empty time of its instruction queue;
//! - the operator's **total time**.
//!
//! [`Profile`] is that record; [`Profiler`] produces it by running the
//! simulator; [`Profile::accumulate`] folds many operator profiles into a
//! model-level aggregate.
//!
//! # Examples
//!
//! ```
//! use ascend_arch::{Buffer, ChipSpec, Component, ComputeUnit, Precision, TransferPath};
//! use ascend_isa::{KernelBuilder, Region};
//! use ascend_profile::Profiler;
//!
//! let chip = ChipSpec::training();
//! let mut b = KernelBuilder::new("axpy");
//! let gm = Region::new(Buffer::Gm, 0, 8192);
//! let ub = Region::new(Buffer::Ub, 0, 8192);
//! b.transfer(TransferPath::GmToUb, gm, ub)?;
//! b.sync(Component::MteGm, Component::Vector);
//! b.compute(ComputeUnit::Vector, Precision::Fp16, 4096, vec![ub], vec![ub]);
//!
//! let profiler = Profiler::new(chip);
//! let (profile, _trace) = profiler.run(&b.build())?;
//! assert_eq!(profile.ops_of(ComputeUnit::Vector, Precision::Fp16), 4096);
//! assert!(profile.active_cycles(Component::MteGm) > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod calibration;

use ascend_arch::{ChipSpec, Component, ComputeUnit, Precision, TransferPath};
use ascend_isa::{Kernel, KernelStats};
use ascend_sim::{MetricsSink, SimError, Simulator, Trace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The per-operator metric record of the paper's Section 3.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Name of the profiled kernel (or aggregate).
    pub name: String,
    /// Operations per (unit, precision) — from the instruction queues.
    #[serde(with = "ascend_isa::ops_map_serde")]
    pub ops: BTreeMap<(ComputeUnit, Precision), u64>,
    /// Bytes per transfer path — from the instruction queues.
    pub bytes: BTreeMap<TransferPath, u64>,
    /// Active (executing) cycles per component.
    pub active_cycles: BTreeMap<Component, f64>,
    /// End-to-end cycles of the operator (sums under accumulation).
    pub total_cycles: f64,
    /// Number of instructions profiled.
    pub instruction_count: u64,
}

impl Profile {
    /// Builds a profile from a kernel's static stats and its trace.
    #[must_use]
    pub fn collect(kernel: &Kernel, trace: &Trace) -> Self {
        let stats = KernelStats::of(kernel);
        let mut active_cycles = BTreeMap::new();
        for component in Component::ALL {
            let busy = trace.busy_cycles(component);
            if busy > 0.0 {
                active_cycles.insert(component, busy);
            }
        }
        Profile {
            name: kernel.name().to_owned(),
            ops: stats.ops,
            bytes: stats.bytes,
            active_cycles,
            total_cycles: trace.total_cycles(),
            instruction_count: kernel.len() as u64,
        }
    }

    /// Builds a profile from a streaming [`MetricsSink`] after a
    /// successful run — no trace required. For a completed kernel this
    /// equals [`Profile::collect`] on the same run bit-for-bit: the sink
    /// counts ops/bytes over the executed instructions (all of them, on
    /// success) and accumulates active cycles in per-queue start order,
    /// which is the order `Trace::busy_cycles` sums in.
    #[must_use]
    pub fn from_metrics(metrics: &MetricsSink, total_cycles: f64) -> Self {
        Profile {
            name: metrics.kernel_name().to_owned(),
            ops: metrics.ops(),
            bytes: metrics.bytes(),
            active_cycles: metrics.active_map(),
            total_cycles,
            instruction_count: metrics.instruction_count(),
        }
    }

    /// An empty aggregate to [`accumulate`](Profile::accumulate) into.
    #[must_use]
    pub fn empty(name: impl Into<String>) -> Self {
        Profile {
            name: name.into(),
            ops: BTreeMap::new(),
            bytes: BTreeMap::new(),
            active_cycles: BTreeMap::new(),
            total_cycles: 0.0,
            instruction_count: 0,
        }
    }

    /// Folds `other` into this profile, modelling back-to-back execution:
    /// counts, active cycles, and total cycles all add.
    pub fn accumulate(&mut self, other: &Profile) {
        for (&key, &n) in &other.ops {
            *self.ops.entry(key).or_default() += n;
        }
        for (&path, &b) in &other.bytes {
            *self.bytes.entry(path).or_default() += b;
        }
        for (&component, &cycles) in &other.active_cycles {
            *self.active_cycles.entry(component).or_default() += cycles;
        }
        self.total_cycles += other.total_cycles;
        self.instruction_count += other.instruction_count;
    }

    /// Folds `other` in `count` times (for repeated operator invocations).
    pub fn accumulate_scaled(&mut self, other: &Profile, count: u64) {
        for (&key, &n) in &other.ops {
            *self.ops.entry(key).or_default() += n * count;
        }
        for (&path, &b) in &other.bytes {
            *self.bytes.entry(path).or_default() += b * count;
        }
        for (&component, &cycles) in &other.active_cycles {
            *self.active_cycles.entry(component).or_default() += cycles * count as f64;
        }
        self.total_cycles += other.total_cycles * count as f64;
        self.instruction_count += other.instruction_count * count;
    }

    /// Operations of `precision` executed on `unit`.
    #[must_use]
    pub fn ops_of(&self, unit: ComputeUnit, precision: Precision) -> u64 {
        self.ops.get(&(unit, precision)).copied().unwrap_or(0)
    }

    /// All operations executed on `unit`.
    #[must_use]
    pub fn total_ops(&self, unit: ComputeUnit) -> u64 {
        self.ops.iter().filter(|((u, _), _)| *u == unit).map(|(_, &n)| n).sum()
    }

    /// Bytes moved along `path`.
    #[must_use]
    pub fn bytes_on_path(&self, path: TransferPath) -> u64 {
        self.bytes.get(&path).copied().unwrap_or(0)
    }

    /// Bytes moved by the MTE behind `component` (0 for compute components).
    #[must_use]
    pub fn bytes_of_component(&self, component: Component) -> u64 {
        self.bytes.iter().filter(|(path, _)| path.component() == component).map(|(_, &b)| b).sum()
    }

    /// Active cycles of `component` (0 when it never executed).
    #[must_use]
    pub fn active_cycles(&self, component: Component) -> f64 {
        self.active_cycles.get(&component).copied().unwrap_or(0.0)
    }

    /// The component time ratio `R = T_component / T_total` (paper, Eq. 6).
    #[must_use]
    pub fn time_ratio(&self, component: Component) -> f64 {
        if self.total_cycles <= 0.0 {
            return 0.0;
        }
        self.active_cycles(component) / self.total_cycles
    }

    /// Components that did any work in this profile.
    #[must_use]
    pub fn active_components(&self) -> Vec<Component> {
        Component::ALL
            .into_iter()
            .filter(|c| {
                self.active_cycles(*c) > 0.0
                    || self.total_ops_of_component(*c) > 0
                    || self.bytes_of_component(*c) > 0
            })
            .collect()
    }

    fn total_ops_of_component(&self, component: Component) -> u64 {
        component.as_unit().map_or(0, |u| self.total_ops(u))
    }

    /// Total operator time in microseconds at `chip`'s clock.
    #[must_use]
    pub fn total_micros(&self, chip: &ChipSpec) -> f64 {
        chip.cycles_to_micros(self.total_cycles)
    }
}

/// Convenience wrapper: simulate a kernel and collect its profile.
#[derive(Debug, Clone)]
pub struct Profiler {
    simulator: Simulator,
}

impl Profiler {
    /// Creates a profiler for `chip`.
    #[must_use]
    pub fn new(chip: ChipSpec) -> Self {
        Profiler { simulator: Simulator::new(chip) }
    }

    /// The chip being profiled.
    #[must_use]
    pub fn chip(&self) -> &ChipSpec {
        self.simulator.chip()
    }

    /// Access the underlying simulator.
    #[must_use]
    pub fn simulator(&self) -> &Simulator {
        &self.simulator
    }

    /// Simulates `kernel` and returns its profile together with the trace.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the simulator.
    pub fn run(&self, kernel: &Kernel) -> Result<(Profile, Trace), SimError> {
        let trace = self.simulator.simulate(kernel)?;
        Ok((Profile::collect(kernel, &trace), trace))
    }

    /// Simulates `kernel` and returns only its profile, streaming the
    /// §3.1 metrics out of the engine without materializing a trace.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the simulator.
    pub fn profile_only(&self, kernel: &Kernel) -> Result<Profile, SimError> {
        let mut metrics = MetricsSink::new();
        let summary = self.simulator.simulate_into(kernel, &mut metrics)?;
        Ok(Profile::from_metrics(&metrics, summary.total_cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascend_arch::Buffer;
    use ascend_isa::{KernelBuilder, Region};

    fn sample_kernel(tag: u64) -> Kernel {
        let gm = Region::new(Buffer::Gm, tag * 65536, 8192);
        let ub = Region::new(Buffer::Ub, 0, 8192);
        let out = Region::new(Buffer::Gm, tag * 65536 + 32768, 8192);
        let mut b = KernelBuilder::new(format!("op{tag}"));
        let loaded = b.new_flag();
        let done = b.new_flag();
        b.transfer(TransferPath::GmToUb, gm, ub).unwrap();
        b.set_flag(Component::MteGm, loaded);
        b.wait_flag(Component::Vector, loaded);
        b.compute(ComputeUnit::Vector, Precision::Fp16, 4096, vec![ub], vec![ub]);
        b.set_flag(Component::Vector, done);
        b.wait_flag(Component::MteUb, done);
        b.transfer(TransferPath::UbToGm, ub, out).unwrap();
        b.build()
    }

    #[test]
    fn collect_matches_static_counts() {
        let profiler = Profiler::new(ChipSpec::training());
        let kernel = sample_kernel(0);
        let (profile, trace) = profiler.run(&kernel).unwrap();
        assert_eq!(profile.ops_of(ComputeUnit::Vector, Precision::Fp16), 4096);
        assert_eq!(profile.bytes_on_path(TransferPath::GmToUb), 8192);
        assert_eq!(profile.bytes_on_path(TransferPath::UbToGm), 8192);
        assert_eq!(profile.total_cycles, trace.total_cycles());
        assert_eq!(profile.instruction_count, kernel.len() as u64);
    }

    #[test]
    fn time_ratios_are_at_most_one() {
        let profiler = Profiler::new(ChipSpec::training());
        let (profile, _) = profiler.run(&sample_kernel(0)).unwrap();
        for c in Component::ALL {
            let r = profile.time_ratio(c);
            assert!((0.0..=1.0 + 1e-9).contains(&r), "{c} ratio {r}");
        }
    }

    #[test]
    fn accumulate_adds_everything() {
        let profiler = Profiler::new(ChipSpec::training());
        let (p0, _) = profiler.run(&sample_kernel(0)).unwrap();
        let (p1, _) = profiler.run(&sample_kernel(1)).unwrap();
        let mut agg = Profile::empty("model");
        agg.accumulate(&p0);
        agg.accumulate(&p1);
        assert_eq!(
            agg.ops_of(ComputeUnit::Vector, Precision::Fp16),
            p0.ops_of(ComputeUnit::Vector, Precision::Fp16)
                + p1.ops_of(ComputeUnit::Vector, Precision::Fp16)
        );
        assert!((agg.total_cycles - (p0.total_cycles + p1.total_cycles)).abs() < 1e-9);
    }

    #[test]
    fn accumulate_scaled_matches_repeated_accumulate() {
        let profiler = Profiler::new(ChipSpec::training());
        let (p, _) = profiler.run(&sample_kernel(0)).unwrap();
        let mut by_loop = Profile::empty("loop");
        for _ in 0..5 {
            by_loop.accumulate(&p);
        }
        let mut by_scale = Profile::empty("loop");
        by_scale.accumulate_scaled(&p, 5);
        assert_eq!(by_loop.ops, by_scale.ops);
        assert_eq!(by_loop.bytes, by_scale.bytes);
        assert!((by_loop.total_cycles - by_scale.total_cycles).abs() < 1e-6);
    }

    #[test]
    fn active_components_are_the_four_involved() {
        let profiler = Profiler::new(ChipSpec::training());
        let (p, _) = profiler.run(&sample_kernel(0)).unwrap();
        let active = p.active_components();
        assert!(active.contains(&Component::MteGm));
        assert!(active.contains(&Component::MteUb));
        assert!(active.contains(&Component::Vector));
        assert!(!active.contains(&Component::Cube));
        assert!(!active.contains(&Component::MteL1));
    }

    #[test]
    fn profile_only_equals_trace_derived_profile() {
        let profiler = Profiler::new(ChipSpec::training());
        for tag in 0..4 {
            let kernel = sample_kernel(tag);
            let (from_trace, _) = profiler.run(&kernel).unwrap();
            let streamed = profiler.profile_only(&kernel).unwrap();
            assert_eq!(streamed, from_trace, "streamed metrics must be bit-identical");
        }
    }

    #[test]
    fn serde_round_trip() {
        let profiler = Profiler::new(ChipSpec::training());
        let (p, _) = profiler.run(&sample_kernel(0)).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: Profile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
